//! Runtime free-space tracking over the device grid.
//!
//! [`FreeSpace`] maintains, per fabric row, the sorted list of maximal
//! free column runs, updated incrementally in O(affected runs) on every
//! allocate/release. Placement queries are answered against a
//! *composition index* built with the same run-extension walk as
//! [`fabric::DeviceGeometry`]: at construction we visit every span of
//! every maximal IOB/CLK-free run ([`Device::prr_free_runs`]) and record,
//! for each achievable composition `(W_CLB, W_DSP, W_BRAM)`, the full
//! ascending list of start columns realising it. A query then probes one
//! hash bucket and tests only the geometrically possible starts instead
//! of rescanning the column list.
//!
//! Placement policy is **leftmost, then bottom**: candidate start
//! columns are tried in ascending order, and within a start column base
//! rows ascend. [`NaiveFreeSpace`] reimplements the same policy by brute
//! force over an occupancy grid and is the equivalence oracle (and the
//! bench baseline) for every query and metric.
//!
//! Forbidden (IOB/CLK) columns are never part of any free run, so two
//! adjacent free runs in a row can only be separated by occupied eligible
//! cells — merging runs that touch on release is always safe.
//!
//! Fragmentation metrics are incremental too: the per-row height
//! histograms of the largest-rectangle sweep are repaired column-wise on
//! every allocate/release (stopping at the first unchanged row), so
//! [`FreeSpace::largest_free_rect`] and
//! [`FreeSpace::fragmentation_index`] are O(1) queries — the defrag
//! search and the simulator sample them on every placement change. Debug
//! builds assert the cached value against the full sweep on every query.

use fabric::{ColumnKind, Device, Window, WindowRequest};
use std::collections::{BTreeMap, HashMap};

/// Packs a composition into one `u64` index key (21 bits per count),
/// mirroring the key used by `fabric::DeviceGeometry`.
fn comp_key(clb: u32, dsp: u32, bram: u32) -> u64 {
    (u64::from(clb) << 42) | (u64::from(dsp) << 21) | u64::from(bram)
}

/// Incrementally maintained free-space map of one device.
#[derive(Debug, Clone)]
pub struct FreeSpace {
    rows: u32,
    columns: Vec<ColumnKind>,
    /// Per fabric row (index `row - 1`): sorted, disjoint, maximal free
    /// column runs `[start, end)`. Only PRR-eligible columns ever appear.
    free: Vec<Vec<(usize, usize)>>,
    /// Composition → ascending start columns of spans realising it on the
    /// empty device (the fixed geometry; occupancy is tested per query).
    candidates: HashMap<u64, Vec<u32>>,
    /// Free eligible cells, total and per resource kind slot.
    free_cells: u64,
    free_by_kind: [u64; 3],
    /// `heights[r][c]`: consecutive free cells in column `c` ending at row
    /// index `r` — the per-row histogram the largest-rectangle sweep scans,
    /// kept incrementally under allocate/release.
    heights: Vec<Vec<u64>>,
    /// `row_best[r]`: largest all-free rectangle whose top edge is row
    /// index `r` (a pure function of `heights[r]`).
    row_best: Vec<u64>,
    /// Cached `max(row_best)`: the largest all-free rectangle.
    largest: u64,
}

impl FreeSpace {
    /// An all-free map of `device`.
    pub fn new(device: &Device) -> Self {
        let columns = device.columns().to_vec();
        let mut candidates: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut row_runs = Vec::new();
        let mut free_by_kind = [0u64; 3];
        for run in device.prr_free_runs() {
            for start in run.clone() {
                let mut counts = [0u32; 3];
                for &kind in &columns[start..run.end] {
                    counts[kind.prr_count_slot()] += 1;
                    candidates
                        .entry(comp_key(counts[0], counts[1], counts[2]))
                        .or_default()
                        .push(start as u32);
                }
            }
            for &kind in &columns[run.clone()] {
                free_by_kind[kind.prr_count_slot()] += u64::from(device.rows());
            }
            row_runs.push((run.start, run.end));
        }
        let free_cells = free_by_kind.iter().sum();
        let rows = device.rows() as usize;
        let free = vec![row_runs; rows];
        let mut heights = vec![vec![0u64; columns.len()]; rows];
        for (r, runs) in free.iter().enumerate() {
            let (below, rest) = heights.split_at_mut(r);
            let row = &mut rest[0];
            for &(s, e) in runs {
                for (c, h) in row.iter_mut().enumerate().take(e).skip(s) {
                    *h = below.last().map_or(1, |prev| prev[c] + 1);
                }
            }
        }
        let row_best: Vec<u64> = heights
            .iter()
            .map(|h| largest_rect_in_histogram(h))
            .collect();
        let largest = row_best.iter().copied().max().unwrap_or(0);
        FreeSpace {
            rows: device.rows(),
            columns,
            free,
            candidates,
            free_cells,
            free_by_kind,
            heights,
            row_best,
            largest,
        }
    }

    /// The per-row free runs (row index `row - 1`), for building search
    /// overlays without cloning the composition index.
    pub(crate) fn runs(&self) -> &[Vec<(usize, usize)>] {
        &self.free
    }

    /// Fabric rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Device width in columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Whether the composition exists anywhere on the (empty) device.
    pub fn is_achievable(&self, clb: u32, dsp: u32, bram: u32) -> bool {
        self.candidates.contains_key(&comp_key(clb, dsp, bram))
    }

    /// Ascending start columns whose span realises the composition on the
    /// empty device (occupancy not considered).
    pub fn candidate_starts(&self, clb: u32, dsp: u32, bram: u32) -> &[u32] {
        self.candidates
            .get(&comp_key(clb, dsp, bram))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether every cell of the rectangle is currently free.
    pub fn is_free(&self, start_col: usize, width: usize, row: u32, height: u32) -> bool {
        if width == 0 || height == 0 || row < 1 || row + height - 1 > self.rows {
            return false;
        }
        let end = start_col + width;
        (row..row + height).all(|r| {
            let runs = &self.free[(r - 1) as usize];
            let i = runs.partition_point(|&(s, _)| s <= start_col);
            i > 0 && runs[i - 1].1 >= end
        })
    }

    /// First free window satisfying `req` under the leftmost-then-bottom
    /// policy, or `None`. One composition-index probe plus occupancy
    /// checks on the candidate starts only.
    pub fn find_window(&self, req: &WindowRequest) -> Option<Window> {
        let width = req.width() as usize;
        if width == 0 || req.height < 1 || req.height > self.rows {
            return None;
        }
        for &start in self.candidate_starts(req.clb_cols, req.dsp_cols, req.bram_cols) {
            let start = start as usize;
            for row in 1..=self.rows - req.height + 1 {
                if self.is_free(start, width, row, req.height) {
                    return Some(Window {
                        start_col: start,
                        width: req.width(),
                        row,
                        height: req.height,
                        columns: self.columns[start..start + width].to_vec(),
                    });
                }
            }
        }
        None
    }

    /// Mark the window's cells occupied. The window must be fully free.
    pub fn allocate(&mut self, w: &Window) {
        self.allocate_rect(w.start_col, w.width as usize, w.row, w.height);
    }

    /// Rectangle form of [`FreeSpace::allocate`]: no `Window` (and hence
    /// no `columns` `Vec`) needs to exist — the search tree applies moves
    /// through this.
    pub fn allocate_rect(&mut self, start_col: usize, width: usize, row: u32, height: u32) {
        assert!(
            self.is_free(start_col, width, row, height),
            "allocate of a non-free window"
        );
        let end = start_col + width;
        for r in row..row + height {
            carve_run(&mut self.free[(r - 1) as usize], start_col, end);
        }
        let h = u64::from(height);
        for &kind in &self.columns[start_col..end] {
            self.free_by_kind[kind.prr_count_slot()] -= h;
        }
        self.free_cells -= width as u64 * h;
        self.update_rect_metrics(start_col, end, row, height, false);
    }

    /// Return the window's cells to the free map, merging with adjacent
    /// runs (always safe: forbidden columns are never free, so touching
    /// runs are contiguous eligible cells).
    pub fn release(&mut self, w: &Window) {
        self.release_rect(w.start_col, w.width as usize, w.row, w.height);
    }

    /// Rectangle form of [`FreeSpace::release`].
    pub fn release_rect(&mut self, start_col: usize, width: usize, row: u32, height: u32) {
        let end = start_col + width;
        for r in row..row + height {
            merge_run(&mut self.free[(r - 1) as usize], start_col, end);
        }
        let h = u64::from(height);
        for &kind in &self.columns[start_col..end] {
            self.free_by_kind[kind.prr_count_slot()] += h;
        }
        self.free_cells += width as u64 * h;
        self.update_rect_metrics(start_col, end, row, height, true);
    }

    /// Incrementally repair `heights`/`row_best`/`largest` after the cells
    /// of `[start, end) × [row, row + height)` flipped to `now_free`.
    ///
    /// Heights only change in the rectangle's columns: within the mutated
    /// rows the new occupancy is known outright, and above them a cell is
    /// free iff its *old* height was positive (occupancy there did not
    /// change), so the recomputation walks upward per column and stops at
    /// the first row whose height is unchanged — every row above it is
    /// then unchanged too.
    fn update_rect_metrics(
        &mut self,
        start: usize,
        end: usize,
        row: u32,
        height: u32,
        now_free: bool,
    ) {
        let r0 = (row - 1) as usize;
        let r1 = r0 + height as usize;
        let rows = self.rows as usize;
        let mut max_changed = r1 - 1;
        for c in start..end {
            let mut prev = if r0 == 0 { 0 } else { self.heights[r0 - 1][c] };
            for r in r0..r1 {
                prev = if now_free { prev + 1 } else { 0 };
                self.heights[r][c] = prev;
            }
            for r in r1..rows {
                let old = self.heights[r][c];
                let new = if old > 0 { prev + 1 } else { 0 };
                if new == old {
                    break;
                }
                self.heights[r][c] = new;
                prev = new;
                if r > max_changed {
                    max_changed = r;
                }
            }
        }
        for r in r0..=max_changed {
            self.row_best[r] = largest_rect_in_histogram(&self.heights[r]);
        }
        self.largest = self.row_best.iter().copied().max().unwrap_or(0);
    }

    /// Free eligible cells in total.
    pub fn total_free_cells(&self) -> u64 {
        self.free_cells
    }

    /// Free eligible cells per resource kind `(CLB, DSP, BRAM)`.
    pub fn free_cells_by_kind(&self) -> [u64; 3] {
        self.free_by_kind
    }

    /// Area (in cells) of the largest all-free rectangle.
    ///
    /// O(1): the value is maintained incrementally by allocate/release
    /// (the defrag search and the simulator's fragmentation sampler query
    /// it on every placement change). Debug builds re-run the full
    /// histogram sweep and assert agreement.
    pub fn largest_free_rect(&self) -> u64 {
        debug_assert_eq!(
            self.largest,
            self.largest_free_rect_scan(),
            "incremental largest-rect drifted from the full scan"
        );
        self.largest
    }

    /// The original full histogram-of-heights largest-rectangle sweep,
    /// O(rows × width) — the ground truth the incremental value is
    /// asserted against in debug builds.
    fn largest_free_rect_scan(&self) -> u64 {
        let width = self.columns.len();
        let mut heights = vec![0u64; width];
        let mut best = 0u64;
        for runs in &self.free {
            let mut cursor = 0usize;
            for &(s, e) in runs {
                for h in &mut heights[cursor..s] {
                    *h = 0;
                }
                for h in &mut heights[s..e] {
                    *h += 1;
                }
                cursor = e;
            }
            for h in &mut heights[cursor..] {
                *h = 0;
            }
            best = best.max(largest_rect_in_histogram(&heights));
        }
        best
    }

    /// External-fragmentation index: `1 − largest free rectangle / total
    /// free cells`; `0` on an empty free map (nothing to fragment).
    pub fn fragmentation_index(&self) -> f64 {
        if self.free_cells == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_rect() as f64 / self.free_cells as f64
    }

    /// Histogram of free-run widths over all rows (width → run count):
    /// the per-resource shape of the free space, small-run-heavy
    /// distributions being the signature of external fragmentation.
    pub fn run_width_histogram(&self) -> BTreeMap<usize, u64> {
        let mut hist = BTreeMap::new();
        for runs in &self.free {
            for &(s, e) in runs {
                *hist.entry(e - s).or_insert(0u64) += 1;
            }
        }
        hist
    }
}

/// Carve `[start, end)` out of one row's sorted maximal free runs. The
/// interval must lie inside a single run (callers check `is_free`).
pub(crate) fn carve_run(runs: &mut Vec<(usize, usize)>, start: usize, end: usize) {
    let i = runs.partition_point(|&(s, _)| s <= start) - 1;
    let (s, e) = runs[i];
    let mut repl = Vec::with_capacity(2);
    if s < start {
        repl.push((s, start));
    }
    if end < e {
        repl.push((end, e));
    }
    runs.splice(i..=i, repl);
}

/// Merge `[start, end)` back into one row's sorted maximal free runs,
/// coalescing with touching neighbours.
pub(crate) fn merge_run(runs: &mut Vec<(usize, usize)>, start: usize, end: usize) {
    let (mut start, mut end) = (start, end);
    let mut i = runs.partition_point(|&(s, _)| s < start);
    debug_assert!(i == 0 || runs[i - 1].1 <= start, "double free (left)");
    debug_assert!(i == runs.len() || end <= runs[i].0, "double free (right)");
    if i < runs.len() && runs[i].0 == end {
        end = runs[i].1;
        runs.remove(i);
    }
    if i > 0 && runs[i - 1].1 == start {
        start = runs[i - 1].0;
        i -= 1;
        runs.remove(i);
    }
    runs.insert(i, (start, end));
}

/// Classic stack-based largest rectangle under a histogram.
fn largest_rect_in_histogram(heights: &[u64]) -> u64 {
    let mut stack: Vec<usize> = Vec::new();
    let mut best = 0u64;
    for i in 0..=heights.len() {
        let h = if i < heights.len() { heights[i] } else { 0 };
        while let Some(&top) = stack.last() {
            if heights[top] <= h {
                break;
            }
            stack.pop();
            let left = stack.last().map_or(0, |&j| j + 1);
            best = best.max(heights[top] * (i - left) as u64);
        }
        stack.push(i);
    }
    best
}

/// Brute-force oracle for [`FreeSpace`]: an occupancy grid with the same
/// API and the same leftmost-then-bottom policy, used by the equivalence
/// property suite and as the bench baseline.
#[derive(Debug, Clone)]
pub struct NaiveFreeSpace {
    rows: u32,
    columns: Vec<ColumnKind>,
    /// `occupied[row - 1][col]`; forbidden columns are permanently true.
    occupied: Vec<Vec<bool>>,
}

impl NaiveFreeSpace {
    /// An all-free map of `device`.
    pub fn new(device: &Device) -> Self {
        let columns = device.columns().to_vec();
        let row: Vec<bool> = columns.iter().map(|k| !k.allowed_in_prr()).collect();
        NaiveFreeSpace {
            rows: device.rows(),
            columns,
            occupied: vec![row; device.rows() as usize],
        }
    }

    /// Whether every cell of the rectangle is free (and eligible).
    pub fn is_free(&self, start_col: usize, width: usize, row: u32, height: u32) -> bool {
        if width == 0 || height == 0 || row < 1 || row + height - 1 > self.rows {
            return false;
        }
        if start_col + width > self.columns.len() {
            return false;
        }
        (row..row + height).all(|r| {
            self.occupied[(r - 1) as usize][start_col..start_col + width]
                .iter()
                .all(|&o| !o)
        })
    }

    /// Linear-scan first fit under the same leftmost-then-bottom policy.
    pub fn find_window(&self, req: &WindowRequest) -> Option<Window> {
        let width = req.width() as usize;
        if width == 0 || width > self.columns.len() || req.height < 1 || req.height > self.rows {
            return None;
        }
        for start in 0..=self.columns.len() - width {
            let mut counts = [0u32; 3];
            let span = &self.columns[start..start + width];
            if span.iter().any(|k| !k.allowed_in_prr()) {
                continue;
            }
            for &k in span {
                counts[k.prr_count_slot()] += 1;
            }
            if counts != [req.clb_cols, req.dsp_cols, req.bram_cols] {
                continue;
            }
            for row in 1..=self.rows - req.height + 1 {
                if self.is_free(start, width, row, req.height) {
                    return Some(Window {
                        start_col: start,
                        width: req.width(),
                        row,
                        height: req.height,
                        columns: span.to_vec(),
                    });
                }
            }
        }
        None
    }

    /// Mark the window's cells occupied.
    pub fn allocate(&mut self, w: &Window) {
        for r in w.row..w.row + w.height {
            for c in w.start_col..w.end_col() {
                assert!(
                    !self.occupied[(r - 1) as usize][c],
                    "allocate of occupied cell"
                );
                self.occupied[(r - 1) as usize][c] = true;
            }
        }
    }

    /// Mark the window's cells free again.
    pub fn release(&mut self, w: &Window) {
        for r in w.row..w.row + w.height {
            for c in w.start_col..w.end_col() {
                self.occupied[(r - 1) as usize][c] = false;
            }
        }
    }

    /// Free eligible cells in total.
    pub fn total_free_cells(&self) -> u64 {
        self.occupied.iter().flatten().filter(|&&o| !o).count() as u64
    }

    /// Free eligible cells per resource kind `(CLB, DSP, BRAM)`.
    pub fn free_cells_by_kind(&self) -> [u64; 3] {
        let mut by_kind = [0u64; 3];
        for row in &self.occupied {
            for (c, &o) in row.iter().enumerate() {
                if !o {
                    by_kind[self.columns[c].prr_count_slot()] += 1;
                }
            }
        }
        by_kind
    }

    /// Largest all-free rectangle by row-pair enumeration, O(rows² × width).
    pub fn largest_free_rect(&self) -> u64 {
        let rows = self.rows as usize;
        let width = self.columns.len();
        let mut best = 0u64;
        for top in 0..rows {
            let mut free_depth = vec![true; width];
            for bottom in top..rows {
                for (f, &occ) in free_depth.iter_mut().zip(&self.occupied[bottom]) {
                    *f &= !occ;
                }
                let h = (bottom - top + 1) as u64;
                let mut run = 0u64;
                for &f in &free_depth {
                    if f {
                        run += 1;
                        best = best.max(run * h);
                    } else {
                        run = 0;
                    }
                }
            }
        }
        best
    }

    /// External-fragmentation index, same definition as [`FreeSpace`].
    pub fn fragmentation_index(&self) -> f64 {
        let total = self.total_free_cells();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_rect() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Device, Family, ResourceKind::*};

    fn strip(width: u32) -> Device {
        Device::new("strip", Family::Virtex5, 1, vec![Clb; width as usize]).unwrap()
    }

    fn win(start: usize, width: usize, row: u32, height: u32) -> Window {
        Window {
            start_col: start,
            width: width as u32,
            row,
            height,
            columns: vec![Clb; width],
        }
    }

    #[test]
    fn fresh_map_is_all_free_and_unfragmented() {
        let d = fabric::database::xc5vlx110t();
        let fs = FreeSpace::new(&d);
        let naive = NaiveFreeSpace::new(&d);
        assert_eq!(fs.total_free_cells(), naive.total_free_cells());
        assert_eq!(fs.free_cells_by_kind(), naive.free_cells_by_kind());
        assert_eq!(fs.largest_free_rect(), naive.largest_free_rect());
        assert_eq!(fs.fragmentation_index(), naive.fragmentation_index());
    }

    #[test]
    fn carve_and_merge_round_trip() {
        let d = strip(8);
        let mut fs = FreeSpace::new(&d);
        let a = win(0, 3, 1, 1);
        let b = win(3, 2, 1, 1);
        let c = win(5, 3, 1, 1);
        fs.allocate(&a);
        fs.allocate(&b);
        fs.allocate(&c);
        assert_eq!(fs.total_free_cells(), 0);
        fs.release(&a);
        fs.release(&c);
        // Two runs split by b; releasing b merges everything back.
        assert_eq!(fs.run_width_histogram(), BTreeMap::from([(3, 2)]));
        assert_eq!(fs.largest_free_rect(), 3);
        assert!(fs.fragmentation_index() > 0.4);
        fs.release(&b);
        assert_eq!(fs.run_width_histogram(), BTreeMap::from([(8, 1)]));
        assert_eq!(fs.fragmentation_index(), 0.0);
    }

    #[test]
    fn find_window_is_leftmost_then_bottom() {
        let d = Device::new("sq", Family::Virtex5, 3, vec![Clb; 6]).unwrap();
        let mut fs = FreeSpace::new(&d);
        // Occupy the bottom-left 2×2 corner: a 2-wide 1-tall request must
        // land at column 0 row 3 (leftmost start wins over lower row).
        fs.allocate(&Window {
            start_col: 0,
            width: 2,
            row: 1,
            height: 2,
            columns: vec![Clb; 2],
        });
        let w = fs.find_window(&WindowRequest::new(2, 0, 0, 1)).unwrap();
        assert_eq!((w.start_col, w.row), (0, 3));
    }

    #[test]
    fn fragmentation_blocks_wide_requests() {
        let d = strip(8);
        let mut fs = FreeSpace::new(&d);
        fs.allocate(&win(3, 2, 1, 1));
        // 6 cells free but the widest span is 3.
        assert_eq!(fs.total_free_cells(), 6);
        assert!(fs.find_window(&WindowRequest::new(4, 0, 0, 1)).is_none());
        assert!(fs.find_window(&WindowRequest::new(3, 0, 0, 1)).is_some());
    }
}
