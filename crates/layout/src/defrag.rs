//! ICAP-costed defragmentation planning.
//!
//! When an admission fails with [`AllocError::Fragmentation`] the planner
//! searches for a *minimal* set of relocations that frees one contiguous
//! window for the failed organization. Every move is between windows that
//! satisfy [`bitstream::compatible`] — identical height and column-kind
//! sequence, the HTR relocation condition — so the move is exactly one
//! FAR-rewritten bitstream replay, priced at
//! [`IcapModel::transfer_time`](bitstream::IcapModel::transfer_time) over
//! the module's Eq. 18–23 predicted bytes. Whether a plan *runs* is a
//! policy decision ([`DefragPolicy`]): never, only when the cost is
//! recouped by the admitted task's execution time, or always.
//!
//! Plans are single-step: every relocation target must be free *before*
//! the plan runs (no chained moves through cells another move vacates),
//! and targets are pairwise disjoint — the same invariant
//! [`bitstream::relocate_batch`] enforces. This keeps plans short and
//! directly executable in any move order.

use crate::manager::{Allocation, LayoutManager};
use fabric::Window;
use prcost::{Metrics, PrrOrganization};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// When to execute a defragmentation plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefragPolicy {
    /// Never relocate (the no-defrag baseline).
    Never,
    /// Relocate when `cost_ns ≤ ratio × benefit_ns`. The benefit is
    /// always *remaining* execution time: for admission-failure repair
    /// that is the incoming task's execution time (none of it has run at
    /// its arrival, so remaining equals total — the PR-5 behaviour, now
    /// pinned by a regression test); for proactive defrag it is the sum
    /// of the *remaining* (not total) execution time of the live admitted
    /// tasks, since only work still outstanding can recoup the move cost.
    Threshold(f64),
    /// Relocate whenever a plan exists.
    Always,
}

impl DefragPolicy {
    /// Whether a plan (single move set or multi-move sequence) of
    /// `cost_ns` is worth `benefit_ns` of remaining execution time.
    pub fn accepts(&self, cost_ns: u64, benefit_ns: u64) -> bool {
        match self {
            DefragPolicy::Never => false,
            DefragPolicy::Always => true,
            DefragPolicy::Threshold(ratio) => cost_ns as f64 <= ratio * benefit_ns as f64,
        }
    }
}

/// One planned relocation of a live allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelocationMove {
    /// Allocation to move.
    pub id: u64,
    /// Its current window.
    pub from: Window,
    /// The compatible free window it moves to.
    pub to: Window,
    /// Total bytes pushed through the ICAP for this move: the Eq. 18
    /// partial-bitstream write, plus `context_bytes` when the move is
    /// priced preemption-aware.
    pub bytes: u64,
    /// Context save + restore bytes (the readback/`GRESTORE` machinery
    /// for relocating a *running* module). Zero for single-step plans,
    /// which price the write only.
    pub context_bytes: u64,
    /// ICAP transfer time for `bytes`, nanoseconds.
    pub transfer_ns: u64,
}

/// A validated, costed defragmentation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragPlan {
    /// Relocations to execute (any order; targets are pairwise disjoint
    /// and free up front).
    pub moves: Vec<RelocationMove>,
    /// The window freed for the failed organization once moves complete.
    pub admit: Window,
    /// Total ICAP time of all moves, nanoseconds.
    pub total_move_ns: u64,
    /// Total bytes replayed by all moves.
    pub total_move_bytes: u64,
}

/// Axis-aligned window overlap (shared fabric cell).
pub(crate) fn overlaps(a: &Window, b: &Window) -> bool {
    a.start_col < b.end_col()
        && b.start_col < a.end_col()
        && a.row <= b.top_row()
        && b.row <= a.top_row()
}

impl LayoutManager {
    /// Plan a minimal relocation set that frees a window for `org`, or
    /// `None` when no single-step plan with at most `max_moves` moves
    /// exists. Minimality is (move count, then total ICAP time) over all
    /// candidate admit rectangles.
    pub fn plan_defrag(&self, org: &PrrOrganization) -> Option<DefragPlan> {
        let started = Instant::now();
        let free = self.free_space();
        let width = (org.clb_cols + org.dsp_cols + org.bram_cols) as usize;
        if width == 0 || org.height < 1 || org.height > free.rows() {
            return None;
        }
        let mut best: Option<DefragPlan> = None;
        let starts: Vec<u32> = free
            .candidate_starts(org.clb_cols, org.dsp_cols, org.bram_cols)
            .to_vec();
        for start in starts {
            let start = start as usize;
            for row in 1..=free.rows() - org.height + 1 {
                let admit = Window {
                    start_col: start,
                    width: width as u32,
                    row,
                    height: org.height,
                    columns: self.device().columns()[start..start + width].to_vec(),
                };
                if let Some(plan) = self.plan_for_rect(admit) {
                    let better = best.as_ref().is_none_or(|b| {
                        (plan.moves.len(), plan.total_move_ns) < (b.moves.len(), b.total_move_ns)
                    });
                    if better {
                        best = Some(plan);
                    }
                }
            }
        }
        Metrics::global().record_stage("layout:defrag_plan", started.elapsed());
        if best.is_some() {
            Metrics::global().incr_labeled("layout:defrag_plans");
        }
        best
    }

    /// Try to vacate `admit` by relocating every overlapping allocation
    /// to a compatible free window elsewhere.
    fn plan_for_rect(&self, admit: Window) -> Option<DefragPlan> {
        let blockers: Vec<&Allocation> = self
            .allocation_map()
            .values()
            .filter(|a| overlaps(&a.window, &admit))
            .collect();
        if blockers.len() > self.max_moves() {
            return None;
        }
        let mut moves: Vec<RelocationMove> = Vec::with_capacity(blockers.len());
        for blocker in blockers {
            let target = self.find_move_target(blocker, &admit, &moves)?;
            let transfer_ns = self
                .icap()
                .transfer_time(blocker.bitstream_bytes)
                .as_nanos() as u64;
            moves.push(RelocationMove {
                id: blocker.id,
                from: blocker.window.clone(),
                to: target,
                bytes: blocker.bitstream_bytes,
                context_bytes: 0,
                transfer_ns,
            });
        }
        let total_move_ns = moves.iter().map(|m| m.transfer_ns).sum();
        let total_move_bytes = moves.iter().map(|m| m.bytes).sum();
        Some(DefragPlan {
            moves,
            admit,
            total_move_ns,
            total_move_bytes,
        })
    }

    /// Leftmost-then-bottom free window that is relocation-compatible
    /// with `blocker` and disjoint from the admit rectangle and every
    /// already-chosen target.
    fn find_move_target(
        &self,
        blocker: &Allocation,
        admit: &Window,
        pending: &[RelocationMove],
    ) -> Option<Window> {
        let free = self.free_space();
        let cols = self.device().columns();
        let bw = blocker.window.columns.len();
        let bh = blocker.window.height;
        for start in 0..=cols.len().saturating_sub(bw) {
            if cols[start..start + bw] != blocker.window.columns[..] {
                continue;
            }
            for row in 1..=free.rows() - bh + 1 {
                let target = Window {
                    start_col: start,
                    width: bw as u32,
                    row,
                    height: bh,
                    columns: blocker.window.columns.clone(),
                };
                // Column-sequence equality makes this hold by
                // construction, but the plan's validity rests on the
                // bitstream layer's own rule, so ask it.
                if !bitstream::compatible(&blocker.window, &target) {
                    continue;
                }
                if !free.is_free(start, bw, row, bh)
                    || overlaps(&target, admit)
                    || pending.iter().any(|m| overlaps(&target, &m.to))
                {
                    continue;
                }
                return Some(target);
            }
        }
        None
    }

    /// Execute a plan: move every allocation in the free-space map and
    /// bump the `layout:*` relocation counters. ICAP time accounting is
    /// the caller's (the simulator serializes moves through the port).
    pub fn execute_defrag(&mut self, plan: &DefragPlan) {
        for mv in &plan.moves {
            debug_assert!(bitstream::compatible(&mv.from, &mv.to));
            self.move_allocation(mv.id, mv.to.clone());
        }
        let m = Metrics::global();
        m.incr_labeled("layout:defrag_executed");
        m.add_labeled("layout:relocations", plan.moves.len() as u64);
        m.add_labeled("layout:relocated_bytes", plan.total_move_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::IcapModel;
    use fabric::{Device, Family, ResourceKind::*};

    fn strip(width: u32) -> Device {
        Device::new("strip", Family::Virtex5, 1, vec![Clb; width as usize]).unwrap()
    }

    fn clb_org(cols: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols: cols,
            dsp_cols: 0,
            bram_cols: 0,
        }
    }

    #[test]
    fn single_move_plan_frees_a_window_and_prices_the_move() {
        let d = strip(8);
        let mut m = LayoutManager::new(&d, IcapModel::V5_DMA);
        let a = m.allocate("a", &clb_org(3)).unwrap();
        let b = m.allocate("b", &clb_org(2)).unwrap();
        let c = m.allocate("c", &clb_org(3)).unwrap();
        m.release(a);
        m.release(c);

        let org = clb_org(4);
        assert_eq!(
            m.allocate("d", &org),
            Err(crate::manager::AllocError::Fragmentation)
        );
        let plan = m.plan_defrag(&org).unwrap();
        assert_eq!(plan.moves.len(), 1);
        let mv = &plan.moves[0];
        assert_eq!(mv.id, b);
        assert!(bitstream::compatible(&mv.from, &mv.to));
        let bytes = m.allocation(b).unwrap().bitstream_bytes;
        assert_eq!(mv.bytes, bytes);
        assert_eq!(
            mv.transfer_ns,
            IcapModel::V5_DMA.transfer_time(bytes).as_nanos() as u64
        );
        assert_eq!(plan.total_move_ns, mv.transfer_ns);

        m.execute_defrag(&plan);
        let id = m.allocate("d", &org).unwrap();
        assert_eq!(m.allocation(id).unwrap().window.width, 4);
    }

    #[test]
    fn policies_gate_on_cost_versus_benefit() {
        assert!(!DefragPolicy::Never.accepts(0, u64::MAX));
        assert!(DefragPolicy::Always.accepts(u64::MAX, 0));
        let t = DefragPolicy::Threshold(0.5);
        assert!(t.accepts(49, 100));
        assert!(t.accepts(50, 100));
        assert!(!t.accepts(51, 100));
    }

    #[test]
    fn no_plan_when_blockers_have_no_compatible_home() {
        // Full strip: the only blocker of any admit rect has nowhere to
        // go, so planning fails and the failure stays a rejection.
        let d = strip(4);
        let mut m = LayoutManager::new(&d, IcapModel::V5_DMA);
        m.allocate("a", &clb_org(4)).unwrap();
        assert!(m.plan_defrag(&clb_org(1)).is_none());
    }
}
