//! Property and acceptance suites for the online layout manager.
//!
//! Three layers of ground truth:
//! * [`layout::FreeSpace`] must agree — placements, occupancy, every
//!   fragmentation metric — with the brute-force occupancy grid
//!   [`layout::NaiveFreeSpace`] under arbitrary allocate/release churn on
//!   arbitrary devices;
//! * every relocation the dynamic simulator logs must replay through the
//!   *real* `bitstream::relocate` (regenerated stream, FAR rewrite,
//!   round-trip back), and its ICAP charge must equal
//!   `IcapModel::transfer_time` over the module's Eq. 18 predicted bytes;
//! * with the layout manager disabled the fixed-PRR simulator is
//!   untouched: report-identical to the frozen seed implementation in
//!   `multitask::sim::reference`.

use bitstream::{generate, relocate, BitstreamSpec, IcapModel};
use fabric::{Device, Family, ResourceKind, Window, WindowRequest};
use layout::{simulate_layout, DefragPolicy, FreeSpace, LayoutConfig, NaiveFreeSpace};
use multitask::sim::reference::{simulate_seed, SeedPolicy};
use multitask::{simulate, BestFit, FirstFit, PrSystem, ReuseAware, Workload};
use prcost::{bitstream_size_bytes, PrrOrganization};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = Device> {
    (
        proptest::collection::vec(
            prop_oneof![
                6 => Just(ResourceKind::Clb),
                1 => Just(ResourceKind::Dsp),
                1 => Just(ResourceKind::Bram),
                1 => Just(ResourceKind::Iob),
                1 => Just(ResourceKind::Clk),
            ],
            1..40,
        ),
        1u32..7,
    )
        .prop_map(|(cols, rows)| Device::new("prop", Family::Virtex5, rows, cols).expect("device"))
}

/// One step of free-space churn: try to place a request, or free the
/// n-th oldest live window.
#[derive(Debug, Clone)]
enum Op {
    Place {
        clb: u32,
        dsp: u32,
        bram: u32,
        height: u32,
    },
    Free {
        slot: usize,
    },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u32..6, 0u32..2, 0u32..2, 1u32..7).prop_map(|(clb, dsp, bram, height)| Op::Place {
                clb, dsp, bram, height,
            }),
            1 => (0usize..8).prop_map(|slot| Op::Free { slot }),
        ],
        1..60,
    )
}

proptest! {
    /// The incremental run-tracking structure and the brute-force
    /// occupancy grid agree on every placement decision and every
    /// fragmentation metric, at every step of an arbitrary churn.
    #[test]
    fn free_space_matches_naive_oracle(device in arb_device(), ops in arb_ops()) {
        let mut fast = FreeSpace::new(&device);
        let mut naive = NaiveFreeSpace::new(&device);
        let mut live: Vec<Window> = Vec::new();
        for op in ops {
            match op {
                Op::Place { clb, dsp, bram, height } => {
                    let req = WindowRequest::new(clb, dsp, bram, height);
                    let a = fast.find_window(&req);
                    let b = naive.find_window(&req);
                    prop_assert_eq!(&a, &b, "placement diverged for {:?}", req);
                    if let Some(w) = a {
                        fast.allocate(&w);
                        naive.allocate(&w);
                        live.push(w);
                    }
                }
                Op::Free { slot } => {
                    if live.is_empty() {
                        continue;
                    }
                    let w = live.remove(slot % live.len());
                    fast.release(&w);
                    naive.release(&w);
                }
            }
            prop_assert_eq!(fast.total_free_cells(), naive.total_free_cells());
            prop_assert_eq!(fast.free_cells_by_kind(), naive.free_cells_by_kind());
            prop_assert_eq!(fast.largest_free_rect(), naive.largest_free_rect());
            prop_assert_eq!(fast.fragmentation_index(), naive.fragmentation_index());
        }
    }
}

/// The pinned fragmentation-inducing workload of the acceptance
/// criterion: heavy-tailed module sizes on xc5vlx110t. Chosen by seed
/// sweep; regenerating it is fully deterministic. (Re-pinned from seed
/// 12 to 24 when `Rng::from_seed` gained seed mixing and the generator
/// streams changed.)
fn pinned_workload() -> (Device, Workload) {
    let device = fabric::database::xc5vlx110t();
    let workload =
        Workload::generate_heavy_tailed(24, Family::Virtex5, 200, 16, 1500, 40_000, 400_000);
    (device, workload)
}

#[test]
fn defrag_admits_strictly_more_on_heavy_tailed_workload() {
    let (device, workload) = pinned_workload();
    let never = simulate_layout(&device, &workload, &LayoutConfig::default());
    let always = simulate_layout(
        &device,
        &workload,
        &LayoutConfig {
            policy: DefragPolicy::Always,
            ..LayoutConfig::default()
        },
    );
    assert_eq!(never.relocations, 0, "Never must not move anything");
    assert!(never.rejected_fragmentation > 0, "workload must fragment");
    assert!(
        always.admitted > never.admitted,
        "defrag must admit strictly more ({} vs {})",
        always.admitted,
        never.admitted
    );
    assert!(always.relocations > 0);
    assert_eq!(always.relocation_log.len(), always.relocations as usize);
}

#[test]
fn logged_relocations_replay_through_real_bitstream_relocate() {
    let (device, workload) = pinned_workload();
    let config = LayoutConfig {
        policy: DefragPolicy::Always,
        ..LayoutConfig::default()
    };
    let report = simulate_layout(&device, &workload, &config);
    assert!(!report.relocation_log.is_empty());

    let mut charged = 0u64;
    for ev in &report.relocation_log {
        // The ICAP charge is exactly the Eq. 18–23 predicted bytes
        // through the configured port model.
        assert_eq!(ev.bytes, bitstream_size_bytes(&ev.organization));
        let transfer = config.icap.transfer_time(ev.bytes).as_nanos() as u64;
        assert_eq!(ev.transfer_ns, transfer);
        charged += transfer;

        // Regenerate the moved module's stream at its source window and
        // push it through the real relocator: the move must validate,
        // and moving back must be the byte-for-byte identity.
        let width = ev.organization.width() as usize;
        let window = |col: u32, row: u32| Window {
            start_col: col as usize,
            width: width as u32,
            row,
            height: ev.organization.height,
            columns: device.columns()[col as usize..col as usize + width].to_vec(),
        };
        let from = window(ev.from_col, ev.from_row);
        let to = window(ev.to_col, ev.to_row);
        assert!(
            bitstream::compatible(&from, &to),
            "incompatible move logged"
        );
        let spec = BitstreamSpec::from_plan(device.name(), &ev.module, ev.organization, &from);
        let bs = generate(&spec).unwrap();
        let moved = relocate(&bs, &device, &to).unwrap();
        let back = relocate(&moved, &device, &from).unwrap();
        assert_eq!(
            back.words, bs.words,
            "relocation round-trip is the identity"
        );
    }
    assert_eq!(
        report.relocation_ns, charged,
        "total relocation time must equal the summed ICAP transfers"
    );
}

#[test]
fn threshold_policy_is_bounded_by_never_and_always() {
    let (device, workload) = pinned_workload();
    let run = |policy| {
        simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy,
                ..LayoutConfig::default()
            },
        )
    };
    let never = run(DefragPolicy::Never);
    let threshold = run(DefragPolicy::Threshold(10.0));
    let always = run(DefragPolicy::Always);
    assert!(threshold.admitted >= never.admitted);
    assert!(always.admitted >= threshold.admitted);
}

/// With the layout manager disabled nothing in the fixed-PRR path
/// changed: the live simulator still produces reports bit-identical to
/// the frozen seed implementation, scheduler by scheduler.
#[test]
fn fixed_prr_simulator_is_untouched_when_layout_disabled() {
    let device = fabric::database::xc5vlx110t();
    let org = PrrOrganization {
        family: Family::Virtex5,
        height: 2,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let system = PrSystem::homogeneous(&device, org, 4, IcapModel::V5_DMA).unwrap();
    for seed in [3u64, 12, 21] {
        let workload = system.filter_workload(&Workload::generate(
            seed,
            Family::Virtex5,
            150,
            10,
            400,
            8_000,
            120_000,
        ));
        assert_eq!(
            simulate(&system, &workload, &FirstFit),
            simulate_seed(&system, &workload, SeedPolicy::FirstFit)
        );
        assert_eq!(
            simulate(&system, &workload, &BestFit),
            simulate_seed(&system, &workload, SeedPolicy::BestFit)
        );
        assert_eq!(
            simulate(&system, &workload, &ReuseAware),
            simulate_seed(&system, &workload, SeedPolicy::ReuseAware)
        );
    }
}
