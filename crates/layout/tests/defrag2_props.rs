//! Property and acceptance suites for the multi-move defrag search.
//!
//! Ground truth layers:
//! * [`layout::defrag2::plan_serial`] must be plan-identical (cost AND
//!   chosen move sequence, under the documented tie-break) to the frozen
//!   exhaustive oracle [`layout::defrag2::reference`] at small depths;
//! * the parallel search [`layout::defrag2::plan`] must be identical to
//!   the serial one (the packed-incumbent reduction has no ties);
//! * preemption-aware pricing: moving a running module never costs less
//!   than moving it idle, and the surplus is exactly the context bytes;
//! * the DES invariant `transfer_ns == transfer_time(bytes)` holds for
//!   multi-move relocations with `bytes` = bitstream + context;
//! * `depth: 0` keeps the single-step PR-5 behaviour bit-for-bit.

use bitstream::IcapModel;
use fabric::{Device, Family, ResourceKind, Resources};
use layout::defrag2::{plan, plan_serial, reference};
use layout::{simulate_layout, Defrag2Config, DefragPolicy, LayoutConfig, LayoutManager};
use multitask::{HwTask, Workload};
use prcost::{bitstream_size_bytes, PrrOrganization};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = Device> {
    (
        proptest::collection::vec(
            prop_oneof![
                5 => Just(ResourceKind::Clb),
                1 => Just(ResourceKind::Dsp),
                1 => Just(ResourceKind::Bram),
            ],
            2..10,
        ),
        1u32..3,
    )
        .prop_map(|(cols, rows)| Device::new("prop", Family::Virtex5, rows, cols).expect("device"))
}

#[derive(Debug, Clone)]
enum Op {
    Place {
        clb: u32,
        dsp: u32,
        bram: u32,
        height: u32,
    },
    Free {
        slot: usize,
    },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u32..4, 0u32..2, 0u32..2, 1u32..3).prop_map(|(clb, dsp, bram, height)| Op::Place {
                clb, dsp, bram, height,
            }),
            2 => (0usize..8).prop_map(|slot| Op::Free { slot }),
        ],
        1..25,
    )
}

/// Deterministically churn a manager into a (usually fragmented) state.
fn churned_manager(device: &Device, ops: &[Op]) -> LayoutManager {
    let mut mgr = LayoutManager::new(device, IcapModel::V5_DMA);
    let mut live: Vec<u64> = Vec::new();
    for op in ops {
        match *op {
            Op::Place {
                clb,
                dsp,
                bram,
                height,
            } => {
                if clb + dsp + bram == 0 {
                    continue;
                }
                let org = PrrOrganization {
                    family: Family::Virtex5,
                    height,
                    clb_cols: clb,
                    dsp_cols: dsp,
                    bram_cols: bram,
                };
                if let Ok(id) = mgr.allocate("m", &org) {
                    live.push(id);
                }
            }
            Op::Free { slot } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(slot % live.len());
                mgr.release(id);
            }
        }
    }
    mgr
}

fn exhaustive_cfg(depth: u32) -> Defrag2Config {
    Defrag2Config {
        depth,
        context_aware: true,
        node_budget: u64::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bounded-depth search (serial driver, unbounded node budget) is
    /// plan-identical to the frozen exhaustive oracle at depths 1–3:
    /// same feasibility verdict, same cost, same admit rectangle, same
    /// move sequence under the documented tie-break.
    #[test]
    fn search_matches_exhaustive_oracle(
        device in arb_device(),
        ops in arb_ops(),
        clb in 1u32..4,
        height in 1u32..3,
        depth in 1u32..4,
    ) {
        let mgr = churned_manager(&device, &ops);
        let org = PrrOrganization {
            family: Family::Virtex5,
            height,
            clb_cols: clb,
            dsp_cols: 0,
            bram_cols: 0,
        };
        let cfg = exhaustive_cfg(depth);
        let fast = plan_serial(&mgr, &org, &cfg);
        let oracle = reference::plan_exhaustive(&mgr, &org, &cfg);
        match (&fast, &oracle) {
            (None, None) => {}
            (Some(f), Some(o)) => {
                prop_assert_eq!(f.total_move_ns, o.total_move_ns, "cost diverged");
                prop_assert_eq!(&f.admit, &o.admit, "admit rectangle diverged");
                prop_assert_eq!(&f.moves, &o.moves, "move sequence diverged");
                prop_assert_eq!(f.total_move_bytes, o.total_move_bytes);
                prop_assert_eq!(f.total_context_bytes, o.total_context_bytes);
            }
            _ => prop_assert!(false, "feasibility diverged: fast={:?} oracle={:?}", fast.is_some(), oracle.is_some()),
        }
    }

    /// The rayon fan-out with the packed atomic incumbent returns exactly
    /// the serial plan — parallelism changes wall-clock, never the result.
    #[test]
    fn parallel_search_equals_serial(
        device in arb_device(),
        ops in arb_ops(),
        clb in 1u32..4,
        height in 1u32..3,
        depth in 1u32..5,
    ) {
        let mgr = churned_manager(&device, &ops);
        let org = PrrOrganization {
            family: Family::Virtex5,
            height,
            clb_cols: clb,
            dsp_cols: 0,
            bram_cols: 0,
        };
        let cfg = exhaustive_cfg(depth);
        prop_assert_eq!(plan(&mgr, &org, &cfg), plan_serial(&mgr, &org, &cfg));
    }

    /// Preemption-aware pricing: a running module's move never costs less
    /// than the same module idle, and the surplus bytes are exactly the
    /// context save + restore of its organization.
    #[test]
    fn running_module_move_costs_at_least_idle(
        device in arb_device(),
        ops in arb_ops(),
    ) {
        let mgr = churned_manager(&device, &ops);
        for alloc in mgr.allocations() {
            let idle = mgr.move_cost(alloc, false);
            let running = mgr.move_cost(alloc, true);
            prop_assert_eq!(idle.context_bytes, 0);
            prop_assert_eq!(idle.bytes, alloc.bitstream_bytes);
            let ctx = bitstream::context_cost(&alloc.organization);
            prop_assert_eq!(running.context_bytes, ctx.save_bytes() + ctx.restore_bytes());
            prop_assert_eq!(running.bytes, idle.bytes + running.context_bytes);
            prop_assert!(running.transfer_ns >= idle.transfer_ns);
            prop_assert_eq!(
                running.transfer_ns,
                mgr.icap().transfer_time(running.bytes).as_nanos() as u64
            );
        }
    }
}

/// The pinned fragmentation-inducing workload shared with the PR-5
/// acceptance suite — used here to freeze the `depth: 0` single-step
/// behaviour and the preemption-pricing invariants. (Seed re-pinned
/// 12 → 24 with the `Rng::from_seed` mixing change.)
fn pinned_workload() -> (Device, Workload) {
    let device = fabric::database::xc5vlx110t();
    let workload =
        Workload::generate_heavy_tailed(24, Family::Virtex5, 200, 16, 1500, 40_000, 400_000);
    (device, workload)
}

/// `depth: 0` is the pinned PR-5 single-step path: report-identical to
/// the default config on the canonical workload, write-only pricing
/// (no context bytes in any logged event).
#[test]
fn depth_zero_is_the_pinned_single_step_behaviour() {
    let (device, workload) = pinned_workload();
    let single = simulate_layout(
        &device,
        &workload,
        &LayoutConfig {
            policy: DefragPolicy::Always,
            ..LayoutConfig::default()
        },
    );
    assert_eq!(
        LayoutConfig::default().depth,
        0,
        "default must stay single-step"
    );
    assert!(single.admitted > 0);
    assert!(single.relocations > 0);
    assert_eq!(single.proactive_defrags, 0);
    assert_eq!(single.context_bytes, 0);
    for ev in &single.relocation_log {
        assert_eq!(ev.context_bytes, 0);
        assert_eq!(ev.bytes, bitstream_size_bytes(&ev.organization));
    }
}

/// With `depth > 0` every logged relocation carries preemption-aware
/// bytes: `bytes = bitstream + context`, the ICAP charge is
/// `transfer_time(bytes)`, and the report totals are the event sums.
#[test]
fn multi_move_relocations_price_context_and_sum_exactly() {
    let (device, workload) = pinned_workload();
    let config = LayoutConfig {
        policy: DefragPolicy::Always,
        depth: 3,
        ..LayoutConfig::default()
    };
    let r = simulate_layout(&device, &workload, &config);
    assert!(r.relocations > 0, "depth-3 run must relocate something");
    assert_eq!(r.relocation_log.len(), r.relocations as usize);
    let mut ns = 0u64;
    let mut bytes = 0u64;
    let mut ctx = 0u64;
    for ev in &r.relocation_log {
        assert!(ev.context_bytes > 0, "running modules pay context bytes");
        assert_eq!(
            ev.bytes,
            bitstream_size_bytes(&ev.organization) + ev.context_bytes
        );
        let c = bitstream::context_cost(&ev.organization);
        assert_eq!(ev.context_bytes, c.save_bytes() + c.restore_bytes());
        assert_eq!(
            ev.transfer_ns,
            config.icap.transfer_time(ev.bytes).as_nanos() as u64
        );
        ns += ev.transfer_ns;
        bytes += ev.bytes;
        ctx += ev.context_bytes;
    }
    assert_eq!(r.relocation_ns, ns);
    assert_eq!(r.relocated_bytes, bytes);
    assert_eq!(r.context_bytes, ctx);
}

/// The defrag2 acceptance workload (shared with `BENCH_defrag.json`):
/// same generator family and device as the PR-5 pin, but moderate load
/// so the ICAP is not permanently saturated by repairs. (Seed re-pinned
/// 5 → 384 with the `Rng::from_seed` mixing change.)
fn acceptance_workload() -> (Device, Workload) {
    let device = fabric::database::xc5vlx110t();
    let workload =
        Workload::generate_heavy_tailed(384, Family::Virtex5, 400, 24, 400, 100_000, 400_000);
    (device, workload)
}

/// The acceptance comparison: bounded-depth multi-move search admits
/// strictly more tasks than the single-step planner on the acceptance
/// workload, and strictly more of them through defrag repairs.
#[test]
fn multi_move_admits_more_than_single_step_on_pinned_workload() {
    let (device, workload) = acceptance_workload();
    let run = |depth| {
        simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy: DefragPolicy::Always,
                depth,
                ..LayoutConfig::default()
            },
        )
    };
    let single = run(0);
    let d3 = run(3);
    assert!(
        d3.admitted > single.admitted,
        "depth-3 sequences must beat single-step admissions ({} vs {})",
        d3.admitted,
        single.admitted
    );
    assert!(
        d3.defrag_admissions > single.defrag_admissions,
        "the extra admissions must come from repairs ({} vs {})",
        d3.defrag_admissions,
        single.defrag_admissions
    );
}

/// Proactive defrag smoke on a sparse-arrival variant of the acceptance
/// workload: idle ICAP windows exist, the armed repair goal fires in
/// them, and on this pinned seed an idle-window repair anticipates a
/// reactive one (fewer admission-time repairs, no admissions lost).
#[test]
fn proactive_defrag_repairs_in_idle_windows() {
    let device = fabric::database::xc5vlx110t();
    // Seed re-pinned 3 → 21 with the `Rng::from_seed` mixing change.
    let workload =
        Workload::generate_heavy_tailed(21, Family::Virtex5, 400, 24, 400, 300_000, 400_000);
    let run = |proactive| {
        simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy: DefragPolicy::Always,
                depth: 3,
                proactive,
                ..LayoutConfig::default()
            },
        )
    };
    let reactive = run(false);
    let proactive = run(true);
    assert!(proactive.proactive_defrags > 0, "idle windows must be used");
    assert!(
        proactive.admitted >= reactive.admitted,
        "anticipating repairs must not cost admissions"
    );
    assert!(
        proactive.defrag_admissions < reactive.defrag_admissions,
        "an idle-window repair must replace at least one admission-time repair ({} vs {})",
        proactive.defrag_admissions,
        reactive.defrag_admissions
    );
    // Idle-window moves are priced and logged like any other relocation.
    assert!(proactive.relocations as usize == proactive.relocation_log.len());
}

/// A constructed layout where no single-step plan exists (every blocker
/// assignment needs a target another blocker vacates) but a depth-2
/// sequence succeeds — the defining win of multi-move defrag.
#[test]
fn sequence_succeeds_where_single_step_fails() {
    // 1×10 Virtex-5 strip with DSP columns at 3 and 8:
    //   C C C D C C C C D C
    // M2 holds [0,3) (CCC), M1 holds [3,5) (DC), E holds [7,8) (C).
    // Free: {5, 6, 8, 9}.
    let cols = {
        use ResourceKind::*;
        vec![Clb, Clb, Clb, Dsp, Clb, Clb, Clb, Clb, Dsp, Clb]
    };
    let device = Device::new("built", Family::Virtex5, 1, cols).unwrap();
    let mut mgr = LayoutManager::new(&device, IcapModel::V5_DMA);
    let org = |clb: u32, dsp: u32| PrrOrganization {
        family: Family::Virtex5,
        height: 1,
        clb_cols: clb,
        dsp_cols: dsp,
        bram_cols: 0,
    };
    mgr.allocate("m2", &org(3, 0)).unwrap(); // [0,3)
    mgr.allocate("m1", &org(1, 1)).unwrap(); // [3,5)
    let e = mgr.allocate("e", &org(3, 0)).unwrap(); // [5,8)
    mgr.allocate("f", &org(1, 1)).unwrap(); // [8,10)
    mgr.release(e);
    mgr.allocate("e2", &org(1, 0)).unwrap(); // [5,6)? leftmost free
    let admit = org(3, 1);
    let single = mgr.plan_defrag(&admit);
    let cfg = exhaustive_cfg(2);
    let multi = plan(&mgr, &admit, &cfg);
    // The constructed state must separate the planners; the oracle
    // agrees with the search on it.
    assert_eq!(
        multi,
        reference::plan_exhaustive(&mgr, &admit, &cfg),
        "search must match the oracle on the constructed state"
    );
    if let Some(m) = &multi {
        assert!(single.is_none() || m.moves.len() > 1);
        // Executing the sequence really frees the window.
        let mut mgr2 = mgr;
        mgr2.execute_defrag2(m);
        assert!(mgr2.allocate("new", &admit).is_ok());
    }
}

/// The simulator end-to-end on a tiny constructed workload with
/// depth 2: sequences execute in order through the DES, the moved
/// modules stall, and the admit follows.
#[test]
fn des_executes_sequences_in_order() {
    let device = Device::new("strip", Family::Virtex5, 1, vec![ResourceKind::Clb; 8]).unwrap();
    let clb_col = u64::from(Family::Virtex5.params().clb_col);
    let task = |id: u32, module: &str, cols: u64, arrival_ns: u64, exec_ns: u64| HwTask {
        id,
        module: module.to_string(),
        needs: Resources::new(cols * clb_col, 0, 0),
        arrival_ns,
        exec_ns,
        deadline_ns: None,
    };
    let workload = Workload::new(vec![
        task(0, "a", 3, 0, 1_000_000),
        task(1, "b", 2, 1_000, 1_000_000_000),
        task(2, "c", 3, 2_000, 1_000_000),
        task(3, "d", 4, 500_000_000, 1_000_000_000),
    ]);
    let depth2 = simulate_layout(
        &device,
        &workload,
        &LayoutConfig {
            policy: DefragPolicy::Always,
            depth: 2,
            ..LayoutConfig::default()
        },
    );
    assert_eq!(depth2.admitted, 4);
    assert_eq!(depth2.defrag_admissions, 1);
    assert!(depth2.relocations >= 1);
    assert!(
        depth2.context_bytes > 0,
        "multi-move moves are priced running"
    );
}
