//! Memoized batch planning engine.
//!
//! A sweep of G generators × D devices repeats two expensive inputs many
//! times: a generator's synthesis report depends only on the device
//! *family* (not the device), and a device's window-search geometry is
//! shared by every height and PRM planned on it. [`Engine`] interns both:
//!
//! * **synthesis memo** — keyed by `(generator name, family)`, so a sweep
//!   performs G×F synthesis runs (F = families touched) instead of G×D;
//! * **geometry cache** — one [`DeviceGeometry`] per distinct device,
//!   derived once and shared by reference across worker threads.
//!
//! Every cache is behind a `parking_lot::RwLock`, so one engine can be
//! driven concurrently from a parallel sweep; all activity is recorded in
//! the engine's own [`Metrics`] registry. Plans produced through the
//! engine are byte-identical to calling [`synthesize`](PrmGenerator) and
//! [`plan_prr`](crate::plan_prr) directly (property-tested in the
//! workspace's `engine_props` suite).

use crate::error::CostError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::requirements::PrrRequirements;
use crate::search::{plan_prr_cached, PlanScratch, PrrPlan};
use fabric::{ColumnKind, Device, DeviceGeometry, Family};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use synth::{PrmGenerator, SynthReport};

/// Cache key identifying a device layout. Devices are keyed by name *and*
/// layout so synthetic test devices that reuse a name cannot collide.
type DeviceKey = (String, u32, Vec<ColumnKind>);

fn device_key(device: &Device) -> DeviceKey {
    (
        device.name().to_string(),
        device.rows(),
        device.columns().to_vec(),
    )
}

/// Plan-memo key: the requirement numbers plus the device layout. Plans
/// are a pure function of these, so a repeated sweep on a warm engine is
/// answered entirely from the memo.
type PlanKey = ((Family, u64, u64, u64, u64, u64), DeviceKey);

fn plan_key(req: &PrrRequirements, device: &Device) -> PlanKey {
    (
        (
            req.family,
            req.lut_ff_req,
            req.lut_req,
            req.ff_req,
            req.dsp_req,
            req.bram_req,
        ),
        device_key(device),
    )
}

/// A memoized, instrumented planning engine (see the module docs).
#[derive(Debug, Default)]
pub struct Engine {
    metrics: Metrics,
    geometries: RwLock<HashMap<DeviceKey, Arc<DeviceGeometry>>>,
    synth_memo: RwLock<HashMap<(String, Family), SynthReport>>,
    plan_memo: RwLock<HashMap<PlanKey, Result<PrrPlan, CostError>>>,
}

impl Engine {
    /// New engine with empty caches and zeroed metrics.
    pub fn new() -> Self {
        Engine::default()
    }

    /// The engine's metrics registry (counters are live).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The interned geometry of `device`, deriving it on first sight.
    pub fn geometry(&self, device: &Device) -> Arc<DeviceGeometry> {
        let key = device_key(device);
        if let Some(geo) = self.geometries.read().get(&key) {
            self.metrics.geometry_cache_hits.incr();
            return Arc::clone(geo);
        }
        let geo = self
            .metrics
            .time("geometry", || Arc::new(DeviceGeometry::new(device)));
        let mut map = self.geometries.write();
        // A racing worker may have inserted first; keep its copy so every
        // caller shares one index. The loser counts as a cache hit so
        // builds + hits always equals the number of lookups.
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.metrics.geometry_cache_hits.incr();
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.metrics.geometry_builds.incr();
                Arc::clone(v.insert(geo))
            }
        }
    }

    /// `generator`'s synthesis report for `family`, memoized on
    /// `(generator name, family)`.
    pub fn synthesize(&self, generator: &dyn PrmGenerator, family: Family) -> SynthReport {
        let key = (generator.name(), family);
        if let Some(report) = self.synth_memo.read().get(&key) {
            self.metrics.synth_cache_hits.incr();
            return report.clone();
        }
        let report = self.metrics.time("synth", || generator.synthesize(family));
        let mut map = self.synth_memo.write();
        // Same race accounting as the geometry cache: a losing racer's
        // lookup counts as a hit, not a vanished call.
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.metrics.synth_cache_hits.incr();
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.metrics.synth_calls.incr();
                v.insert(report).clone()
            }
        }
    }

    /// Plan the PRR for `report` on `device` through the geometry cache.
    pub fn plan(&self, report: &SynthReport, device: &Device) -> Result<PrrPlan, CostError> {
        self.plan_with_scratch(report, device, &mut PlanScratch::default())
    }

    /// [`Engine::plan`] with a caller-owned [`PlanScratch`], the
    /// allocation-free path for sweep workers processing many plans.
    ///
    /// Whole plan results are memoized on (requirements, device layout):
    /// a repeat of a previously planned point returns a clone of the
    /// memoized plan instead of re-running the Fig. 1 search.
    pub fn plan_with_scratch(
        &self,
        report: &SynthReport,
        device: &Device,
        scratch: &mut PlanScratch,
    ) -> Result<PrrPlan, CostError> {
        self.metrics.plans.incr();
        let key = plan_key(&PrrRequirements::from_report(report), device);
        if let Some(result) = self.plan_memo.read().get(&key) {
            self.metrics.plan_cache_hits.incr();
            match result {
                Ok(_) => self.metrics.plans_feasible.incr(),
                Err(_) => self.metrics.plans_infeasible.incr(),
            }
            return result.clone();
        }
        let geometry = self.geometry(device);
        self.plan_uncached(key, report, device, &geometry, scratch)
    }

    /// [`Engine::plan_with_scratch`] with the geometry supplied by the
    /// caller, skipping the per-plan geometry-map lookup entirely.
    ///
    /// Sweep drivers prefetch one [`Arc<DeviceGeometry>`] per device and
    /// hand the same index to every worker, so the only shared state a
    /// plan touches is the whole-plan memo. `geometry` must have been
    /// derived from `device` (e.g. via [`Engine::geometry`]).
    pub fn plan_with_geometry(
        &self,
        report: &SynthReport,
        device: &Device,
        geometry: &DeviceGeometry,
        scratch: &mut PlanScratch,
    ) -> Result<PrrPlan, CostError> {
        self.metrics.plans.incr();
        let key = plan_key(&PrrRequirements::from_report(report), device);
        if let Some(result) = self.plan_memo.read().get(&key) {
            self.metrics.plan_cache_hits.incr();
            match result {
                Ok(_) => self.metrics.plans_feasible.incr(),
                Err(_) => self.metrics.plans_infeasible.incr(),
            }
            return result.clone();
        }
        self.plan_uncached(key, report, device, geometry, scratch)
    }

    /// Shared memo-miss path: run the cached Fig. 1 search, tally the
    /// padded-fallback delta, record outcome counters, and memoize.
    fn plan_uncached(
        &self,
        key: PlanKey,
        report: &SynthReport,
        device: &Device,
        geometry: &DeviceGeometry,
        scratch: &mut PlanScratch,
    ) -> Result<PrrPlan, CostError> {
        let padded_before = scratch.padded_resolution_count();
        let result = self.metrics.time("plan", || {
            plan_prr_cached(report, device, geometry, scratch)
        });
        self.metrics
            .padded_fallbacks
            .add(scratch.padded_resolution_count() - padded_before);
        match &result {
            Ok(_) => self.metrics.plans_feasible.incr(),
            Err(_) => self.metrics.plans_infeasible.incr(),
        }
        self.plan_memo
            .write()
            .entry(key)
            .or_insert_with(|| result.clone());
        result
    }

    /// Synthesize (memoized) and plan (geometry-cached) in one call.
    pub fn evaluate(
        &self,
        generator: &dyn PrmGenerator,
        device: &Device,
    ) -> Result<PrrPlan, CostError> {
        let report = self.synthesize(generator, device.family());
        self.plan(&report, device)
    }

    /// Snapshot of the engine's metrics, with the composition-index stats
    /// (probe count, distinct interned compositions) folded in from the
    /// interned geometries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let (probes, compositions) = self
            .geometries
            .read()
            .values()
            .fold((0u64, 0u64), |(p, c), geo| {
                (p + geo.probe_count(), c + geo.distinct_compositions())
            });
        snap.counters.window_probes = probes;
        snap.counters.distinct_compositions = compositions;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_prr;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use synth::PaperPrm;

    #[test]
    fn engine_plans_match_direct_plans() {
        let engine = Engine::new();
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let gen = prm.generator();
                let direct = plan_prr(&gen.synthesize(device.family()), &device).unwrap();
                let via_engine = engine.evaluate(gen.as_ref(), &device).unwrap();
                assert_eq!(direct, via_engine, "{prm:?} on {}", device.name());
            }
        }
    }

    #[test]
    fn synthesis_is_memoized_per_family() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let gen = PaperPrm::Fir.generator();
        let a = engine.synthesize(gen.as_ref(), v5.family());
        let b = engine.synthesize(gen.as_ref(), v5.family());
        assert_eq!(a, b);
        let snap = engine.snapshot();
        assert_eq!(snap.counters.synth_calls, 1);
        assert_eq!(snap.counters.synth_cache_hits, 1);
    }

    #[test]
    fn geometry_is_interned_per_device() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let g1 = engine.geometry(&v5);
        let g2 = engine.geometry(&v5);
        assert!(Arc::ptr_eq(&g1, &g2));
        let snap = engine.snapshot();
        assert_eq!(snap.counters.geometry_builds, 1);
        assert_eq!(snap.counters.geometry_cache_hits, 1);
    }

    #[test]
    fn repeat_plans_hit_the_plan_memo() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let gen = PaperPrm::Mips.generator();
        let first = engine.evaluate(gen.as_ref(), &v5).unwrap();
        let second = engine.evaluate(gen.as_ref(), &v5).unwrap();
        assert_eq!(first, second);
        let c = engine.snapshot().counters;
        assert_eq!(c.plans, 2);
        assert_eq!(c.plan_cache_hits, 1);
        assert_eq!(c.plans_feasible, 2);
    }

    #[test]
    fn infeasible_plans_are_memoized_too() {
        let engine = Engine::new();
        let v6 = xc6vlx75t();
        // A Virtex-5 report on a Virtex-6 device always fails.
        let report = PaperPrm::Fir
            .generator()
            .synthesize(fabric::Family::Virtex5);
        assert!(engine.plan(&report, &v6).is_err());
        assert!(engine.plan(&report, &v6).is_err());
        let c = engine.snapshot().counters;
        assert_eq!(c.plan_cache_hits, 1);
        assert_eq!(c.plans_infeasible, 2);
    }

    #[test]
    fn snapshot_folds_in_window_counters() {
        let engine = Engine::new();
        let v6 = xc6vlx75t();
        let gen = PaperPrm::Sdram.generator();
        engine.evaluate(gen.as_ref(), &v6).unwrap();
        engine.evaluate(gen.as_ref(), &v6).unwrap();
        let snap = engine.snapshot();
        assert!(snap.counters.window_probes > 0);
        assert!(snap.counters.distinct_compositions > 0);
        // SDRAM fits exactly at every height: no padded fallback runs.
        assert_eq!(snap.counters.padded_fallbacks, 0);
        assert_eq!(snap.counters.plans, 2);
        assert_eq!(snap.counters.plans_feasible, 2);
    }

    #[test]
    fn plan_with_geometry_matches_and_skips_map_lookup() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let geo = engine.geometry(&v5);
        let report = PaperPrm::Fir.generator().synthesize(v5.family());
        let mut scratch = PlanScratch::default();
        let via_geometry = engine
            .plan_with_geometry(&report, &v5, &geo, &mut scratch)
            .unwrap();
        let direct = plan_prr(&report, &v5).unwrap();
        assert_eq!(via_geometry, direct);
        let c = engine.snapshot().counters;
        // One explicit geometry() call; plan_with_geometry touched neither
        // the geometry cache nor the builder.
        assert_eq!(c.geometry_builds + c.geometry_cache_hits, 1);
        // The second identical plan is a whole-plan memo hit.
        let again = engine
            .plan_with_geometry(&report, &v5, &geo, &mut scratch)
            .unwrap();
        assert_eq!(again, via_geometry);
        assert_eq!(engine.snapshot().counters.plan_cache_hits, 1);
    }
}
