//! Memoized batch planning engine on sharded concurrent memos.
//!
//! A sweep of G generators × D devices repeats two expensive inputs many
//! times: a generator's synthesis report depends only on the device
//! *family* (not the device), and a device's window-search geometry is
//! shared by every height and PRM planned on it. [`Engine`] interns both,
//! plus whole plan results, in concurrent memos designed so that a *warm*
//! lookup — the overwhelmingly common case in a repeated sweep or a
//! long-running planning service — takes no lock contention and performs
//! **zero heap allocation**:
//!
//! * **device interner** ([`crate::shard::DeviceTable`]) — each distinct
//!   device layout is interned once to a dense [`DeviceId`], pairing it
//!   with its [`DeviceGeometry`]. The hot lookup streams
//!   [`Device::layout_hash`] (no allocation, unlike the seed's
//!   `(String, u32, Vec<ColumnKind>)` key which cloned the name and the
//!   column list on *every* call, hit or miss) and takes one read lock.
//! * **synthesis memo** — keyed by `(generator fingerprint, family)`.
//!   Fingerprints ([`PrmGenerator::fingerprint`]) hash the generator's
//!   name *and* per-family operator counts, so two differently
//!   parameterized generators that share a name can no longer serve each
//!   other's cached reports (the seed keyed on the name alone).
//! * **plan memo** — a [`Sharded`] striped map from the packed
//!   `(requirements, DeviceId)` [`PlanKey`] to
//!   `Arc<Result<PrrPlan, CostError>>`. Writers contend only within one
//!   of 64 stripes; a hit clones an `Arc`, not a whole plan with its
//!   search trace.
//!
//! [`Engine::plan_arc`] is the allocation-free hit path the async
//! planning service ([`crate::service`]) drives; [`Engine::plan`] and
//! friends keep returning owned plans for existing callers. Plans are
//! byte-identical to calling [`synthesize`](PrmGenerator) and
//! [`plan_prr`](crate::plan_prr) directly (property-tested in the
//! workspace's `engine_props` suite), and the whole memo state round-trips
//! through a versioned [`EngineSnapshot`] for persist/reload.
//!
//! Counter accounting is conserved per cache: every lookup is either a
//! build or a hit (`geometry_builds + geometry_cache_hits` equals intern
//! lookups, `synth_calls + synth_cache_hits` equals synthesis requests,
//! `plan_builds + plan_cache_hits` equals `plans`), with insertion-race
//! losers counted as hits. The multi-thread stress suite asserts these
//! identities under 16-way concurrent mixed load.
//!
//! The seed single-lock engine is frozen verbatim as
//! [`reference::ReferenceEngine`] so the `service_mt` benchmark measures
//! this design against an honest baseline rather than a remembered one.

use crate::error::CostError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::requirements::PrrRequirements;
use crate::search::{plan_requirements_cached, PlanScratch, PrrPlan};
use crate::shard::{DeviceEntry, DeviceId, DeviceTable, EngineToken, PlanKey, Sharded, SynthKey};
use fabric::{Device, DeviceGeometry, Family};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use synth::{PrmGenerator, SynthReport};

/// A memoized, instrumented planning engine (see the module docs).
#[derive(Debug, Default)]
pub struct Engine {
    metrics: Metrics,
    /// Process-unique identity; guards scratch-level resolution caches.
    token: EngineToken,
    devices: DeviceTable,
    synth_memo: Sharded<SynthKey, SynthReport>,
    plan_memo: Sharded<PlanKey, Arc<Result<PrrPlan, CostError>>>,
}

impl Engine {
    /// New engine with empty caches and zeroed metrics.
    pub fn new() -> Self {
        Engine::default()
    }

    /// The engine's metrics registry (counters are live).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Intern `device`, deriving its geometry on first sight; returns the
    /// dense id and the shared entry. Warm calls are allocation-free: a
    /// streamed layout hash, one read lock, one structural comparison.
    ///
    /// Accounting: every call bumps exactly one of `geometry_builds`
    /// (this call derived and inserted the geometry) or
    /// `geometry_cache_hits` (served an existing entry, including losing
    /// an insertion race), so `builds + hits` equals intern lookups.
    pub fn intern_device(&self, device: &Device) -> (DeviceId, Arc<DeviceEntry>) {
        if let Some((id, entry)) = self.devices.lookup(device) {
            self.metrics.geometry_cache_hits.incr();
            return (id, entry);
        }
        let geo = self
            .metrics
            .time("geometry", || Arc::new(DeviceGeometry::new(device)));
        let (id, entry, inserted) = self.devices.insert(device, geo);
        if inserted {
            self.metrics.geometry_builds.incr();
        } else {
            self.metrics.geometry_cache_hits.incr();
        }
        (id, entry)
    }

    /// The interned geometry of `device`, deriving it on first sight.
    pub fn geometry(&self, device: &Device) -> Arc<DeviceGeometry> {
        let (_, entry) = self.intern_device(device);
        Arc::clone(&entry.geometry)
    }

    /// The interned id of `device` (interning it on first sight).
    pub fn device_id(&self, device: &Device) -> DeviceId {
        self.intern_device(device).0
    }

    /// `generator`'s synthesis report for `family`, memoized on
    /// `(generator fingerprint, family)` — the fingerprint covers the
    /// generator's parameters, so same-named but differently configured
    /// generators get distinct entries.
    pub fn synthesize(&self, generator: &dyn PrmGenerator, family: Family) -> SynthReport {
        let key = SynthKey {
            fingerprint: generator.fingerprint(),
            family,
        };
        if let Some(report) = self.synth_memo.get(&key) {
            self.metrics.synth_cache_hits.incr();
            return report;
        }
        let report = self.metrics.time("synth", || generator.synthesize(family));
        // First writer wins; a losing racer's lookup counts as a hit, not
        // a vanished call, so calls + hits equals synthesis requests.
        let (stored, inserted) = self.synth_memo.insert_or_get(key, report);
        if inserted {
            self.metrics.synth_calls.incr();
        } else {
            self.metrics.synth_cache_hits.incr();
        }
        stored
    }

    /// Plan the PRR for `report` on `device` through the device interner.
    pub fn plan(&self, report: &SynthReport, device: &Device) -> Result<PrrPlan, CostError> {
        self.plan_with_scratch(report, device, &mut PlanScratch::default())
    }

    /// [`Engine::plan`] with a caller-owned [`PlanScratch`]; returns an
    /// owned plan (cloned out of the memo on a hit). Workers that can
    /// share the memoized allocation should prefer [`Engine::plan_arc`].
    pub fn plan_with_scratch(
        &self,
        report: &SynthReport,
        device: &Device,
        scratch: &mut PlanScratch,
    ) -> Result<PrrPlan, CostError> {
        self.plan_arc(report, device, scratch).as_ref().clone()
    }

    /// Plan the PRR for `report` on `device`, returning the memo's shared
    /// `Arc` directly.
    ///
    /// This is the engine's hot path: when the `(requirements, device)`
    /// point is already memoized, the call performs **zero heap
    /// allocation** — layout-hash intern lookup, packed-key shard probe,
    /// `Arc` clone — which the `service_mt` benchmark asserts with a
    /// counting allocator. Whole plan results (feasible and infeasible
    /// alike) are memoized; a repeat of a previously planned point never
    /// re-runs the Fig. 1 search.
    pub fn plan_arc(
        &self,
        report: &SynthReport,
        device: &Device,
        scratch: &mut PlanScratch,
    ) -> Arc<Result<PrrPlan, CostError>> {
        self.plan_requirements(&PrrRequirements::from_report(report), device, scratch)
    }

    /// [`Engine::plan_arc`] from explicit requirements — the entry point
    /// the async planning service drives (its requests carry requirements,
    /// not synthesis reports). A family mismatch between `req` and
    /// `device` is planned to (and memoized as) the same
    /// [`CostError::FamilyMismatch`] the report-level paths return.
    pub fn plan_requirements(
        &self,
        req: &PrrRequirements,
        device: &Device,
        scratch: &mut PlanScratch,
    ) -> Arc<Result<PrrPlan, CostError>> {
        self.metrics.plans.incr();
        // Device resolution, fastest first: the scratch's per-caller cache
        // (one structural comparison, no shared state), then the interner.
        // A scratch cache hit is a geometry cache hit — the accounting
        // invariant (`geometry_builds + geometry_cache_hits` = plan-path
        // device resolutions) does not see the shortcut.
        let (id, entry) = match scratch.cached_device(self.token, device) {
            Some(hit) => {
                self.metrics.geometry_cache_hits.incr();
                hit
            }
            None => {
                let (id, entry) = self.intern_device(device);
                scratch.cache_device(self.token, id, &entry);
                (id, entry)
            }
        };
        let key = PlanKey::new(req, id);
        if let Some(hit) = self.plan_memo.get(&key) {
            self.metrics.plan_cache_hits.incr();
            self.record_outcome(&hit);
            return hit;
        }
        self.plan_uncached(key, req, device, &entry.geometry, scratch)
    }

    /// [`Engine::plan_with_scratch`] with the geometry supplied by the
    /// caller (e.g. prefetched once per device by a sweep driver).
    ///
    /// `geometry` **must** have been derived from `device` — a mismatched
    /// pair would memoize a wrong plan under the right key, poisoning
    /// every later lookup of that point. Debug builds enforce this with
    /// the geometry's recorded source-layout hash
    /// ([`DeviceGeometry::matches_device`]); release builds trust the
    /// caller, as before.
    pub fn plan_with_geometry(
        &self,
        report: &SynthReport,
        device: &Device,
        geometry: &DeviceGeometry,
        scratch: &mut PlanScratch,
    ) -> Result<PrrPlan, CostError> {
        debug_assert!(
            geometry.matches_device(device),
            "geometry was not derived from device `{}` (source layout hash {:#x} != {:#x})",
            device.name(),
            geometry.source_layout_hash(),
            device.layout_hash(),
        );
        self.metrics.plans.incr();
        let (id, _) = self.intern_device(device);
        let req = PrrRequirements::from_report(report);
        let key = PlanKey::new(&req, id);
        if let Some(hit) = self.plan_memo.get(&key) {
            self.metrics.plan_cache_hits.incr();
            self.record_outcome(&hit);
            return hit.as_ref().clone();
        }
        self.plan_uncached(key, &req, device, geometry, scratch)
            .as_ref()
            .clone()
    }

    /// Shared memo-miss path: run the cached Fig. 1 search, tally the
    /// padded-fallback delta, record outcome counters, and memoize.
    fn plan_uncached(
        &self,
        key: PlanKey,
        req: &PrrRequirements,
        device: &Device,
        geometry: &DeviceGeometry,
        scratch: &mut PlanScratch,
    ) -> Arc<Result<PrrPlan, CostError>> {
        let padded_before = scratch.padded_resolution_count();
        let result = self.metrics.time("plan", || {
            plan_requirements_cached(req, device, geometry, scratch)
        });
        self.metrics
            .padded_fallbacks
            .add(scratch.padded_resolution_count() - padded_before);
        self.record_outcome(&result);
        // First writer wins: a racing loser computed an identical result
        // (plans are deterministic) and shares the winner's allocation;
        // its plan counts as a hit so builds + hits == plans.
        let (stored, inserted) = self.plan_memo.insert_or_get(key, Arc::new(result));
        if inserted {
            self.metrics.plan_builds.incr();
        } else {
            self.metrics.plan_cache_hits.incr();
        }
        stored
    }

    /// Bump the per-call feasible/infeasible outcome counters.
    fn record_outcome(&self, result: &Result<PrrPlan, CostError>) {
        match result {
            Ok(_) => self.metrics.plans_feasible.incr(),
            Err(_) => self.metrics.plans_infeasible.incr(),
        }
    }

    /// Synthesize (memoized) and plan (memoized) in one call.
    pub fn evaluate(
        &self,
        generator: &dyn PrmGenerator,
        device: &Device,
    ) -> Result<PrrPlan, CostError> {
        let report = self.synthesize(generator, device.family());
        self.plan(&report, device)
    }

    /// Number of memoized plan points (feasible and infeasible).
    pub fn plan_memo_len(&self) -> usize {
        self.plan_memo.len()
    }

    /// Snapshot of the engine's metrics, with the composition-index stats
    /// (probe count, distinct interned compositions) folded in from the
    /// interned geometries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let (probes, compositions) =
            self.devices
                .entries_in_order()
                .iter()
                .fold((0u64, 0u64), |(p, c), entry| {
                    (
                        p + entry.geometry.probe_count(),
                        c + entry.geometry.distinct_compositions(),
                    )
                });
        snap.counters.window_probes = probes;
        snap.counters.distinct_compositions = compositions;
        snap
    }

    /// Export the engine's memo state as a versioned, deterministic
    /// snapshot (devices in intern order, records sorted by key). Window
    /// geometries are not serialized — they are pure functions of the
    /// devices and are rebuilt on import.
    pub fn export_state(&self) -> EngineSnapshot {
        let devices: Vec<Device> = self
            .devices
            .entries_in_order()
            .iter()
            .map(|e| e.device.clone())
            .collect();
        let mut synth = Vec::new();
        self.synth_memo.for_each(|k, v| {
            synth.push(SynthRecord {
                fingerprint: k.fingerprint,
                family: k.family,
                report: v.clone(),
            });
        });
        synth.sort_by_key(|r| (r.fingerprint, r.family as u8));
        let mut plans = Vec::new();
        self.plan_memo.for_each(|k, v| {
            plans.push(PlanRecord {
                device: k.device.index() as u32,
                family: k.family,
                req: k.req,
                result: v.as_ref().clone(),
            });
        });
        plans.sort_by_key(|r| (r.device, r.family as u8, r.req));
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            devices,
            synth,
            plans,
        }
    }

    /// Rebuild an engine from an exported snapshot: re-intern every
    /// device (rebuilding its window geometry), then seed the synthesis
    /// and plan memos with the recorded entries. Lookups against the
    /// restored engine return byte-identical results to the exporting
    /// engine's. Restored entries are not replayed plans, so the plan
    /// counters start at zero; only `geometry_builds` reflects the
    /// geometry reconstruction work actually done here.
    pub fn import_state(snapshot: &EngineSnapshot) -> Result<Engine, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snapshot.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let engine = Engine::new();
        let mut ids = Vec::with_capacity(snapshot.devices.len());
        for device in &snapshot.devices {
            let (id, _) = engine.intern_device(device);
            ids.push(id);
        }
        for record in &snapshot.synth {
            engine.synth_memo.insert_or_get(
                SynthKey {
                    fingerprint: record.fingerprint,
                    family: record.family,
                },
                record.report.clone(),
            );
        }
        for record in &snapshot.plans {
            let id =
                *ids.get(record.device as usize)
                    .ok_or(SnapshotError::DeviceIndexOutOfRange {
                        index: record.device,
                        devices: snapshot.devices.len(),
                    })?;
            let key = PlanKey::from_parts(id, record.family, record.req);
            engine
                .plan_memo
                .insert_or_get(key, Arc::new(record.result.clone()));
        }
        Ok(engine)
    }
}

/// Version tag of [`EngineSnapshot`]; bump on any layout change so stale
/// snapshots are rejected instead of misread.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Serializable memo state of an [`Engine`]: interned devices (in
/// [`DeviceId`] order), synthesis records, and whole-plan records — `Ok`
/// and `Err` alike. Deterministic for a given memo content (records are
/// key-sorted), so equal engines export equal snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Interned devices, index == [`DeviceId::index`].
    pub devices: Vec<Device>,
    /// Synthesis memo entries.
    pub synth: Vec<SynthRecord>,
    /// Plan memo entries.
    pub plans: Vec<PlanRecord>,
}

/// One synthesis-memo entry of an [`EngineSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthRecord {
    /// Generator fingerprint ([`PrmGenerator::fingerprint`]).
    pub fingerprint: u64,
    /// Family synthesized for.
    pub family: Family,
    /// The memoized report.
    pub report: SynthReport,
}

/// One plan-memo entry of an [`EngineSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// Index into [`EngineSnapshot::devices`].
    pub device: u32,
    /// Requirement family.
    pub family: Family,
    /// The packed requirement numbers
    /// (`[LUT_FF_req, LUT_req, FF_req, DSP_req, BRAM_req]`).
    pub req: [u64; 5],
    /// The memoized plan outcome, `Err` plans included.
    pub result: Result<PrrPlan, CostError>,
}

/// Why an [`EngineSnapshot`] could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by an incompatible engine revision.
    VersionMismatch {
        /// Version found in the snapshot.
        found: u32,
        /// Version this engine reads.
        supported: u32,
    },
    /// A plan record references a device index the snapshot doesn't hold.
    DeviceIndexOutOfRange {
        /// Offending device index.
        index: u32,
        /// Number of devices in the snapshot.
        devices: usize,
    },
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "engine snapshot version {found} is not supported (this engine reads {supported})"
            ),
            SnapshotError::DeviceIndexOutOfRange { index, devices } => write!(
                f,
                "plan record references device {index} but the snapshot holds {devices} devices"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

pub mod reference {
    //! The seed engine, frozen as the benchmark baseline.
    //!
    //! This is the pre-sharding `Engine` verbatim: three global
    //! `RwLock<HashMap>` interiors, `(String, u32, Vec<ColumnKind>)`
    //! device keys rebuilt (with their allocations) on every call, plan
    //! memo values cloned wholesale on every hit, and the synthesis memo
    //! keyed by generator *name* — including that revision's same-name
    //! aliasing bug, which is exactly why the current engine keys on
    //! fingerprints. **Do not optimize or fix this module**; its purpose
    //! is to keep the `service_mt` benchmark honest about what the
    //! sharded engine replaced. Not wired into any production path.

    use crate::error::CostError;
    use crate::metrics::{Metrics, MetricsSnapshot};
    use crate::requirements::PrrRequirements;
    use crate::search::{plan_prr_cached, PlanScratch, PrrPlan};
    use fabric::{ColumnKind, Device, DeviceGeometry, Family};
    use parking_lot::RwLock;
    use std::collections::HashMap;
    use std::sync::Arc;
    use synth::{PrmGenerator, SynthReport};

    /// Cache key identifying a device layout (name + rows + columns;
    /// allocates on every construction).
    type DeviceKey = (String, u32, Vec<ColumnKind>);

    fn device_key(device: &Device) -> DeviceKey {
        (
            device.name().to_string(),
            device.rows(),
            device.columns().to_vec(),
        )
    }

    /// Plan-memo key: requirement numbers plus the device layout key.
    type PlanKey = ((Family, u64, u64, u64, u64, u64), DeviceKey);

    fn plan_key(req: &PrrRequirements, device: &Device) -> PlanKey {
        (
            (
                req.family,
                req.lut_ff_req,
                req.lut_req,
                req.ff_req,
                req.dsp_req,
                req.bram_req,
            ),
            device_key(device),
        )
    }

    /// The frozen seed engine (see the module docs).
    #[derive(Debug, Default)]
    pub struct ReferenceEngine {
        metrics: Metrics,
        geometries: RwLock<HashMap<DeviceKey, Arc<DeviceGeometry>>>,
        synth_memo: RwLock<HashMap<(String, Family), SynthReport>>,
        plan_memo: RwLock<HashMap<PlanKey, Result<PrrPlan, CostError>>>,
    }

    impl ReferenceEngine {
        /// New engine with empty caches and zeroed metrics.
        pub fn new() -> Self {
            ReferenceEngine::default()
        }

        /// The engine's metrics registry.
        pub fn metrics(&self) -> &Metrics {
            &self.metrics
        }

        /// The interned geometry of `device`, deriving it on first sight.
        pub fn geometry(&self, device: &Device) -> Arc<DeviceGeometry> {
            let key = device_key(device);
            if let Some(geo) = self.geometries.read().get(&key) {
                self.metrics.geometry_cache_hits.incr();
                return Arc::clone(geo);
            }
            let geo = self
                .metrics
                .time("geometry", || Arc::new(DeviceGeometry::new(device)));
            let mut map = self.geometries.write();
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.metrics.geometry_cache_hits.incr();
                    Arc::clone(e.get())
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.metrics.geometry_builds.incr();
                    Arc::clone(v.insert(geo))
                }
            }
        }

        /// `generator`'s report for `family`, memoized on `(name, family)`
        /// — the seed keying, same-name aliasing bug included.
        pub fn synthesize(&self, generator: &dyn PrmGenerator, family: Family) -> SynthReport {
            let key = (generator.name(), family);
            if let Some(report) = self.synth_memo.read().get(&key) {
                self.metrics.synth_cache_hits.incr();
                return report.clone();
            }
            let report = self.metrics.time("synth", || generator.synthesize(family));
            let mut map = self.synth_memo.write();
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.metrics.synth_cache_hits.incr();
                    e.get().clone()
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.metrics.synth_calls.incr();
                    v.insert(report).clone()
                }
            }
        }

        /// Plan through the geometry cache and whole-plan memo.
        pub fn plan(&self, report: &SynthReport, device: &Device) -> Result<PrrPlan, CostError> {
            self.plan_with_scratch(report, device, &mut PlanScratch::default())
        }

        /// [`ReferenceEngine::plan`] with caller-owned scratch. The memo
        /// hit path allocates the full device key and clones the whole
        /// memoized plan — the costs the sharded engine exists to remove.
        pub fn plan_with_scratch(
            &self,
            report: &SynthReport,
            device: &Device,
            scratch: &mut PlanScratch,
        ) -> Result<PrrPlan, CostError> {
            self.metrics.plans.incr();
            let key = plan_key(&PrrRequirements::from_report(report), device);
            if let Some(result) = self.plan_memo.read().get(&key) {
                self.metrics.plan_cache_hits.incr();
                match result {
                    Ok(_) => self.metrics.plans_feasible.incr(),
                    Err(_) => self.metrics.plans_infeasible.incr(),
                }
                return result.clone();
            }
            let geometry = self.geometry(device);
            let padded_before = scratch.padded_resolution_count();
            let result = self.metrics.time("plan", || {
                plan_prr_cached(report, device, &geometry, scratch)
            });
            self.metrics
                .padded_fallbacks
                .add(scratch.padded_resolution_count() - padded_before);
            match &result {
                Ok(_) => self.metrics.plans_feasible.incr(),
                Err(_) => self.metrics.plans_infeasible.incr(),
            }
            self.plan_memo
                .write()
                .entry(key)
                .or_insert_with(|| result.clone());
            result
        }

        /// Synthesize (memoized) and plan in one call.
        pub fn evaluate(
            &self,
            generator: &dyn PrmGenerator,
            device: &Device,
        ) -> Result<PrrPlan, CostError> {
            let report = self.synthesize(generator, device.family());
            self.plan(&report, device)
        }

        /// Metrics snapshot with composition-index stats folded in.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let mut snap = self.metrics.snapshot();
            let (probes, compositions) = self
                .geometries
                .read()
                .values()
                .fold((0u64, 0u64), |(p, c), geo| {
                    (p + geo.probe_count(), c + geo.distinct_compositions())
                });
            snap.counters.window_probes = probes;
            snap.counters.distinct_compositions = compositions;
            snap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_prr;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use synth::{GenericPrm, PaperPrm};

    #[test]
    fn engine_plans_match_direct_plans() {
        let engine = Engine::new();
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let gen = prm.generator();
                let direct = plan_prr(&gen.synthesize(device.family()), &device).unwrap();
                let via_engine = engine.evaluate(gen.as_ref(), &device).unwrap();
                assert_eq!(direct, via_engine, "{prm:?} on {}", device.name());
            }
        }
    }

    #[test]
    fn synthesis_is_memoized_per_family() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let gen = PaperPrm::Fir.generator();
        let a = engine.synthesize(gen.as_ref(), v5.family());
        let b = engine.synthesize(gen.as_ref(), v5.family());
        assert_eq!(a, b);
        let snap = engine.snapshot();
        assert_eq!(snap.counters.synth_calls, 1);
        assert_eq!(snap.counters.synth_cache_hits, 1);
    }

    /// Regression for the seed synth-memo keying bug: two generators that
    /// share a *name* but differ in parameters must not serve each other's
    /// cached reports. The frozen reference engine still exhibits the bug
    /// (asserted here so the regression test itself is known-sensitive).
    #[test]
    fn same_name_generators_do_not_share_synth_entries() {
        let small = GenericPrm::new("dsp_core", GenericPrm::random(1, 500).ops);
        let large = GenericPrm::new("dsp_core", GenericPrm::random(2, 4000).ops);
        assert_eq!(small.name(), large.name());
        assert_ne!(small.fingerprint(), large.fingerprint());

        let engine = Engine::new();
        let fam = Family::Virtex5;
        let a = engine.synthesize(&small, fam);
        let b = engine.synthesize(&large, fam);
        assert_eq!(a, small.synthesize(fam), "small PRM got its own report");
        assert_eq!(b, large.synthesize(fam), "large PRM got its own report");
        assert_ne!(a, b);
        let c = engine.snapshot().counters;
        assert_eq!(c.synth_calls, 2, "two distinct memo entries");
        assert_eq!(c.synth_cache_hits, 0);

        // The reference engine keys on the name alone and aliases them —
        // the bug this test guards against reintroducing.
        let seed = reference::ReferenceEngine::new();
        let a = seed.synthesize(&small, fam);
        let b = seed.synthesize(&large, fam);
        assert_eq!(a, b, "seed engine aliases same-named generators");
    }

    #[test]
    fn geometry_is_interned_per_device() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let g1 = engine.geometry(&v5);
        let g2 = engine.geometry(&v5);
        assert!(Arc::ptr_eq(&g1, &g2));
        let snap = engine.snapshot();
        assert_eq!(snap.counters.geometry_builds, 1);
        assert_eq!(snap.counters.geometry_cache_hits, 1);
        // Same name, different layout: distinct intern entries.
        let twin =
            Device::new(v5.name(), v5.family(), v5.rows() + 1, v5.columns().to_vec()).unwrap();
        let g3 = engine.geometry(&twin);
        assert!(!Arc::ptr_eq(&g1, &g3));
        assert_ne!(engine.device_id(&v5), engine.device_id(&twin));
    }

    #[test]
    fn repeat_plans_hit_the_plan_memo() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let gen = PaperPrm::Mips.generator();
        let first = engine.evaluate(gen.as_ref(), &v5).unwrap();
        let second = engine.evaluate(gen.as_ref(), &v5).unwrap();
        assert_eq!(first, second);
        let c = engine.snapshot().counters;
        assert_eq!(c.plans, 2);
        assert_eq!(c.plan_cache_hits, 1);
        assert_eq!(c.plan_builds, 1);
        assert_eq!(c.plans_feasible, 2);
    }

    #[test]
    fn plan_arc_hits_share_one_allocation() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let report = PaperPrm::Fir.generator().synthesize(v5.family());
        let mut scratch = PlanScratch::default();
        let first = engine.plan_arc(&report, &v5, &mut scratch);
        let second = engine.plan_arc(&report, &v5, &mut scratch);
        assert!(Arc::ptr_eq(&first, &second), "hits return the memo's Arc");
        assert_eq!(engine.plan_memo_len(), 1);
    }

    #[test]
    fn infeasible_plans_are_memoized_too() {
        let engine = Engine::new();
        let v6 = xc6vlx75t();
        // A Virtex-5 report on a Virtex-6 device always fails.
        let report = PaperPrm::Fir
            .generator()
            .synthesize(fabric::Family::Virtex5);
        assert!(engine.plan(&report, &v6).is_err());
        assert!(engine.plan(&report, &v6).is_err());
        let c = engine.snapshot().counters;
        assert_eq!(c.plan_cache_hits, 1);
        assert_eq!(c.plan_builds, 1);
        assert_eq!(c.plans_infeasible, 2);
    }

    #[test]
    fn snapshot_folds_in_window_counters() {
        let engine = Engine::new();
        let v6 = xc6vlx75t();
        let gen = PaperPrm::Sdram.generator();
        engine.evaluate(gen.as_ref(), &v6).unwrap();
        engine.evaluate(gen.as_ref(), &v6).unwrap();
        let snap = engine.snapshot();
        assert!(snap.counters.window_probes > 0);
        assert!(snap.counters.distinct_compositions > 0);
        // SDRAM fits exactly at every height: no padded fallback runs.
        assert_eq!(snap.counters.padded_fallbacks, 0);
        assert_eq!(snap.counters.plans, 2);
        assert_eq!(snap.counters.plans_feasible, 2);
    }

    #[test]
    fn plan_with_geometry_matches_direct_and_memoizes() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let geo = engine.geometry(&v5);
        let report = PaperPrm::Fir.generator().synthesize(v5.family());
        let mut scratch = PlanScratch::default();
        let via_geometry = engine
            .plan_with_geometry(&report, &v5, &geo, &mut scratch)
            .unwrap();
        let direct = plan_prr(&report, &v5).unwrap();
        assert_eq!(via_geometry, direct);
        let c = engine.snapshot().counters;
        // One explicit geometry() intern plus one intern per plan: every
        // intern lookup is a build or a hit.
        assert_eq!(c.geometry_builds, 1);
        assert_eq!(c.geometry_cache_hits, 1);
        assert_eq!(c.geometry_builds + c.geometry_cache_hits, c.plans + 1);
        // The second identical plan is a whole-plan memo hit.
        let again = engine
            .plan_with_geometry(&report, &v5, &geo, &mut scratch)
            .unwrap();
        assert_eq!(again, via_geometry);
        assert_eq!(engine.snapshot().counters.plan_cache_hits, 1);
    }

    /// Bugfix regression: handing `plan_with_geometry` a geometry derived
    /// from a *different* device must be caught (in debug builds) instead
    /// of silently memoizing a wrong plan under the right key.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "geometry was not derived from device")]
    fn plan_with_geometry_rejects_foreign_geometry() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let v6 = xc6vlx75t();
        let foreign = engine.geometry(&v6);
        let report = PaperPrm::Fir.generator().synthesize(v5.family());
        let _ = engine.plan_with_geometry(&report, &v5, &foreign, &mut PlanScratch::default());
    }

    #[test]
    fn state_round_trips_through_snapshot() {
        let engine = Engine::new();
        let v5 = xc5vlx110t();
        let v6 = xc6vlx75t();
        for prm in PaperPrm::ALL {
            let gen = prm.generator();
            engine.evaluate(gen.as_ref(), &v5).unwrap();
            engine.evaluate(gen.as_ref(), &v6).unwrap();
        }
        // One memoized Err plan, so the round trip covers both arms.
        let mismatched = PaperPrm::Fir.generator().synthesize(Family::Virtex5);
        assert!(engine.plan(&mismatched, &v6).is_err());

        let state = engine.export_state();
        assert_eq!(state.version, SNAPSHOT_VERSION);
        assert_eq!(state.devices.len(), 2);
        assert_eq!(state.plans.len(), 7);
        // JSON round trip is exact.
        let json = serde_json::to_string_pretty(&state).unwrap();
        let parsed: EngineSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, state);

        // The restored engine answers every point from its memo,
        // byte-identically, without re-planning.
        let restored = Engine::import_state(&parsed).unwrap();
        let mut scratch = PlanScratch::default();
        for prm in PaperPrm::ALL {
            for device in [&v5, &v6] {
                let report = engine.synthesize(prm.generator().as_ref(), device.family());
                let original = engine.plan_with_scratch(&report, device, &mut scratch);
                let replayed = restored.plan_with_scratch(&report, device, &mut scratch);
                assert_eq!(original, replayed, "{prm:?} on {}", device.name());
            }
        }
        assert_eq!(
            restored.plan(&mismatched, &v6),
            engine.plan(&mismatched, &v6)
        );
        let c = restored.snapshot().counters;
        assert_eq!(c.plan_builds, 0, "restored plans never re-ran the search");
        assert_eq!(c.plan_cache_hits, c.plans);
        // Exporting the restored engine reproduces the snapshot exactly.
        assert_eq!(restored.export_state(), state);
    }

    #[test]
    fn import_rejects_bad_snapshots() {
        let engine = Engine::new();
        engine
            .evaluate(PaperPrm::Fir.generator().as_ref(), &xc5vlx110t())
            .unwrap();
        let mut state = engine.export_state();
        state.version += 1;
        assert!(matches!(
            Engine::import_state(&state),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        let mut state = engine.export_state();
        state.plans[0].device = 99;
        assert!(matches!(
            Engine::import_state(&state),
            Err(SnapshotError::DeviceIndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn reference_engine_matches_sharded_engine() {
        let seed = reference::ReferenceEngine::new();
        let sharded = Engine::new();
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let gen = prm.generator();
                assert_eq!(
                    seed.evaluate(gen.as_ref(), &device).unwrap(),
                    sharded.evaluate(gen.as_ref(), &device).unwrap(),
                    "{prm:?} on {}",
                    device.name()
                );
            }
        }
        let a = seed.snapshot().counters;
        let b = sharded.snapshot().counters;
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.plan_cache_hits, b.plan_cache_hits);
        assert_eq!(a.plans_feasible, b.plans_feasible);
    }
}
