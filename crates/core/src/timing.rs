//! Model-evaluation timing (the cost-model side of Table VIII).
//!
//! Table VIII's point is that the cost models replace a minutes-long
//! synthesis + implementation run with an evaluation that is effectively
//! free ("less than 5 minutes in all cases" including synthesis; the
//! formula evaluation itself is instantaneous). This module measures the
//! actual evaluation cost of the models on this host so the `table8` bench
//! can report model-vs-flow wall times on the same substrate.

use crate::error::CostError;
use crate::search::{plan_prr, PrrPlan};
use fabric::Device;
use serde::Serialize;
use std::time::{Duration, Instant};
use synth::SynthReport;

/// Wall-clock measurement of repeated cost-model evaluations.
#[derive(Debug, Clone, Serialize)]
pub struct ModelTiming {
    /// Number of evaluations performed.
    pub evaluations: u32,
    /// Total elapsed wall time.
    pub total: Duration,
}

impl ModelTiming {
    /// Mean time per evaluation.
    pub fn per_evaluation(&self) -> Duration {
        if self.evaluations == 0 {
            Duration::ZERO
        } else {
            self.total / self.evaluations
        }
    }
}

/// Run the full Fig. 1 planning `iterations` times and measure it.
///
/// Returns the last plan alongside the timing so callers can report both.
pub fn time_model(
    report: &SynthReport,
    device: &Device,
    iterations: u32,
) -> Result<(PrrPlan, ModelTiming), CostError> {
    assert!(iterations >= 1);
    let start = Instant::now();
    let mut plan = plan_prr(report, device)?;
    for _ in 1..iterations {
        plan = plan_prr(report, device)?;
    }
    let total = start.elapsed();
    Ok((
        plan,
        ModelTiming {
            evaluations: iterations,
            total,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::xc5vlx110t;
    use fabric::Family;
    use synth::PaperPrm;

    #[test]
    fn timing_counts_and_divides() {
        let device = xc5vlx110t();
        let report = PaperPrm::Sdram.synth_report(Family::Virtex5);
        let (plan, timing) = time_model(&report, &device, 10).unwrap();
        assert_eq!(timing.evaluations, 10);
        assert!(timing.per_evaluation() <= timing.total);
        assert_eq!(plan.organization.height, 1);
    }

    /// The paper's claim at our scale: one model evaluation is far under a
    /// millisecond, i.e. orders of magnitude below any synthesis run.
    #[test]
    fn model_evaluation_is_fast() {
        let device = xc5vlx110t();
        let report = PaperPrm::Mips.synth_report(Family::Virtex5);
        let (_, timing) = time_model(&report, &device, 100).unwrap();
        assert!(
            timing.per_evaluation() < Duration::from_millis(5),
            "evaluation took {:?}",
            timing.per_evaluation()
        );
    }

    #[test]
    fn zero_division_guard() {
        let t = ModelTiming {
            evaluations: 0,
            total: Duration::from_secs(1),
        };
        assert_eq!(t.per_evaluation(), Duration::ZERO);
    }
}
