//! Sharded concurrent memo primitives for the planning engine.
//!
//! The paper's cost models are pure functions of (requirements, device
//! layout), so whole plans memoize perfectly — but a single
//! `RwLock<HashMap>` memo serializes every writer and, with owned
//! `String`/`Vec` keys, allocates on every *lookup*, hit or miss. This
//! module supplies the two pieces that make the memo a concurrent,
//! allocation-free service substrate:
//!
//! * [`DeviceTable`] — interns each distinct device layout once, handing
//!   back a dense [`DeviceId`] and a shared [`DeviceGeometry`]. The hot
//!   lookup is one read-lock probe of a layout-hash table followed by a
//!   full structural equality check (hash collisions must not alias two
//!   devices), with zero allocation.
//! * [`Sharded`] — a striped hash map of [`SHARD_COUNT`] independent
//!   `RwLock<HashMap>` shards. Keys carry their own well-mixed packed
//!   `u64` ([`PackedKey`]); the top bits pick the shard and the rest feed
//!   the in-shard bucket hash (the same splitmix64 mixer the composition
//!   index uses), so concurrent writers collide only when they race on
//!   the same key's shard — 1/64th of the old contention — and readers
//!   never allocate.
//!
//! [`PlanKey`] packs a plan-memo key — the five Table I requirement
//! numbers plus the interned device — into a `Copy` value. Equality is on
//! the *full* field set; the packed hash is only a router, so a 64-bit
//! collision costs a shared shard, never a wrong plan.

use crate::requirements::PrrRequirements;
use fabric::{splitmix64, Device, DeviceGeometry, Family};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// Number of independent lock stripes in a [`Sharded`] map. 64 keeps the
/// per-shard write collision probability negligible at 16 workers while
/// the whole shard array (64 `RwLock`s) still fits in a few cache lines
/// of pointers.
pub const SHARD_COUNT: usize = 64;

/// A key that can summarize itself as a well-mixed 64-bit value.
///
/// `packed()` must be deterministic and *equal keys must pack equal*;
/// distinct keys should pack distinct with overwhelming probability but
/// are allowed to collide — [`Sharded`] always verifies full key
/// equality behind the hash.
pub trait PackedKey {
    /// The well-mixed 64-bit summary.
    fn packed(&self) -> u64;
}

/// Hasher that finalizes an already-packed `u64` key with splitmix64.
/// Writing anything but a single `u64` is a logic error.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("sharded-memo keys hash as a single u64");
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = splitmix64(key);
    }
}

/// Identifier of a device layout interned in a [`DeviceTable`]: a dense
/// index, stable for the table's lifetime and across snapshot
/// persist/reload (snapshots store devices in id order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(u32);

impl DeviceId {
    /// The dense table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a dense index (snapshot reload path; the caller
    /// must guarantee the index addresses the same device order).
    pub fn from_index(index: usize) -> Self {
        DeviceId(u32::try_from(index).expect("device table exceeds u32 ids"))
    }
}

/// Process-unique identity of one [`crate::Engine`] instance.
///
/// [`DeviceId`]s are dense per-engine indices, so a cached
/// `(DeviceId, entry)` resolution is only meaningful against the engine
/// that interned it. `PlanScratch` tags its device-resolution cache with
/// the owning engine's token and ignores entries from any other engine —
/// sharing one scratch across engines stays correct, just cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineToken(u64);

impl Default for EngineToken {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        EngineToken(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// An interned device: the layout itself plus its derived geometry.
#[derive(Debug)]
pub struct DeviceEntry {
    /// The interned device layout (an owned copy; callers keep borrowing
    /// their own device, the table never hands out aliases into it).
    pub device: Device,
    /// Composition-indexed window geometry, derived once at intern time.
    pub geometry: Arc<DeviceGeometry>,
}

/// Interned entries sharing one 64-bit layout hash (more than one only
/// on a collision; equality is always verified).
type HashBucket = Vec<(DeviceId, Arc<DeviceEntry>)>;

/// Device-layout interner: layout → ([`DeviceId`], shared geometry).
///
/// Read-mostly by construction (a sweep or service touches a handful of
/// devices and millions of plans), so one `RwLock` per map is enough —
/// the plan hot path takes a single uncontended read lock here and all
/// real concurrency lands on the [`Sharded`] plan memo.
#[derive(Debug, Default)]
pub struct DeviceTable {
    /// `layout_hash` → interned entries with that hash.
    by_hash: RwLock<HashMap<u64, HashBucket, BuildHasherDefault<MixHasher>>>,
    /// Dense id → entry, in intern order.
    entries: RwLock<Vec<Arc<DeviceEntry>>>,
}

impl DeviceTable {
    /// New empty table.
    pub fn new() -> Self {
        DeviceTable::default()
    }

    /// The interned entry for `device`, if it has been seen. Zero
    /// allocation: one streamed layout hash, one read-lock probe, and a
    /// structural equality check per hash candidate.
    pub fn lookup(&self, device: &Device) -> Option<(DeviceId, Arc<DeviceEntry>)> {
        let hash = device.layout_hash();
        let map = self.by_hash.read();
        let candidates = map.get(&hash)?;
        candidates
            .iter()
            .find(|(_, entry)| entry.device == *device)
            .map(|(id, entry)| (*id, Arc::clone(entry)))
    }

    /// Intern `device` with `geometry` (derived by the caller, typically
    /// under a metrics timer). Returns the entry to use and whether this
    /// call inserted it — a racing loser gets the winner's entry back, so
    /// every caller shares one geometry per layout.
    pub fn insert(
        &self,
        device: &Device,
        geometry: Arc<DeviceGeometry>,
    ) -> (DeviceId, Arc<DeviceEntry>, bool) {
        let hash = device.layout_hash();
        let mut map = self.by_hash.write();
        let candidates = map.entry(hash).or_default();
        if let Some((id, entry)) = candidates.iter().find(|(_, entry)| entry.device == *device) {
            return (*id, Arc::clone(entry), false);
        }
        let mut entries = self.entries.write();
        let id = DeviceId::from_index(entries.len());
        let entry = Arc::new(DeviceEntry {
            device: device.clone(),
            geometry,
        });
        entries.push(Arc::clone(&entry));
        candidates.push((id, Arc::clone(&entry)));
        (id, entry, true)
    }

    /// The entry interned as `id`, or `None` for a foreign id.
    pub fn get(&self, id: DeviceId) -> Option<Arc<DeviceEntry>> {
        self.entries.read().get(id.index()).map(Arc::clone)
    }

    /// Number of interned devices.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All interned entries in [`DeviceId`] order (snapshot persistence).
    pub fn entries_in_order(&self) -> Vec<Arc<DeviceEntry>> {
        self.entries.read().clone()
    }
}

/// Plan-memo key: the five Table I requirement numbers, the family, and
/// the interned device. `Copy`, allocation-free to build and hash.
/// `CLB_req` is intentionally absent: Eq. (1) derives it from
/// `LUT_FF_req` and the family, so it adds no information. The packed
/// splitmix digest is computed once at construction — shard routing and
/// the in-shard bucket hash both reuse it, so a memo probe mixes the key
/// exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKey {
    /// Interned device layout.
    pub device: DeviceId,
    /// Requirement family.
    pub family: Family,
    /// `[LUT_FF_req, LUT_req, FF_req, DSP_req, BRAM_req]`.
    pub req: [u64; 5],
    /// Precomputed [`PackedKey::packed`] digest of the fields above.
    packed: u64,
}

impl PlanKey {
    /// Key for planning `req` on `device`.
    pub fn new(req: &PrrRequirements, device: DeviceId) -> Self {
        PlanKey::from_parts(
            device,
            req.family,
            [
                req.lut_ff_req,
                req.lut_req,
                req.ff_req,
                req.dsp_req,
                req.bram_req,
            ],
        )
    }

    /// Key from its raw stored fields (snapshot reload path).
    pub fn from_parts(device: DeviceId, family: Family, req: [u64; 5]) -> Self {
        let mut packed = splitmix64(device.0 as u64 ^ ((family as u64) << 32));
        for field in req {
            packed = splitmix64(packed ^ field);
        }
        PlanKey {
            device,
            family,
            req,
            packed,
        }
    }

    /// Reconstruct the requirements this key was built from (snapshot
    /// reload). Exact: the key carries every field `PrrRequirements::new`
    /// consumes, and Eq. (1) re-derives `clb_req` deterministically.
    pub fn requirements(&self) -> PrrRequirements {
        PrrRequirements::new(
            self.family,
            self.req[0],
            self.req[1],
            self.req[2],
            self.req[3],
            self.req[4],
        )
    }
}

impl PackedKey for PlanKey {
    fn packed(&self) -> u64 {
        self.packed
    }
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.packed());
    }
}

/// Synthesis-memo key: generator fingerprint × family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthKey {
    /// [`synth::PrmGenerator::fingerprint`] of the generator.
    pub fingerprint: u64,
    /// Family synthesized for.
    pub family: Family,
}

impl PackedKey for SynthKey {
    fn packed(&self) -> u64 {
        splitmix64(self.fingerprint ^ ((self.family as u64) << 56))
    }
}

impl Hash for SynthKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.packed());
    }
}

/// A striped concurrent map: [`SHARD_COUNT`] independent
/// `RwLock<HashMap>` shards routed by the key's packed hash.
///
/// Semantics are first-writer-wins ([`Sharded::insert_or_get`]), which
/// is what a deterministic memo needs: racing builders compute identical
/// values, one insert lands, everyone shares it.
#[derive(Debug)]
pub struct Sharded<K, V> {
    shards: Vec<RwLock<HashMap<K, V, BuildHasherDefault<MixHasher>>>>,
}

impl<K: PackedKey + Eq + Hash, V: Clone> Sharded<K, V> {
    /// New empty map with [`SHARD_COUNT`] shards.
    pub fn new() -> Self {
        Sharded {
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V, BuildHasherDefault<MixHasher>>> {
        // Top bits pick the shard; the in-shard bucket hash re-mixes the
        // whole packed value, so shard and bucket selection stay
        // effectively independent.
        &self.shards[(key.packed() >> 58) as usize & (SHARD_COUNT - 1)]
    }

    /// Clone of the value under `key`, if present. One read lock on one
    /// shard; no allocation beyond what `V::clone` itself does.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).cloned()
    }

    /// Insert `value` unless `key` is already present; returns the stored
    /// value (the winner's, on a race) and whether this call inserted.
    pub fn insert_or_get(&self, key: K, value: V) -> (V, bool) {
        let mut shard = self.shard(&key).write();
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(v) => (v.insert(value).clone(), true),
        }
    }

    /// Total entries across all shards (point-in-time sum; shards are
    /// locked one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Visit a point-in-time copy of every entry (shard by shard, read
    /// locks only). Used by snapshot persistence; iteration order is
    /// shard order then in-shard hash order — callers needing stable
    /// output must sort.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }
}

impl<K: PackedKey + Eq + Hash, V: Clone> Default for Sharded<K, V> {
    fn default() -> Self {
        Sharded::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};

    #[test]
    fn device_table_interns_once_and_survives_name_collisions() {
        let table = DeviceTable::new();
        let v5 = xc5vlx110t();
        assert!(table.lookup(&v5).is_none());
        let (id1, e1, inserted1) = table.insert(&v5, Arc::new(DeviceGeometry::new(&v5)));
        assert!(inserted1);
        let (id2, e2, inserted2) = table.insert(&v5, Arc::new(DeviceGeometry::new(&v5)));
        assert!(!inserted2, "second insert must reuse the first entry");
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&e1, &e2));
        let (id3, _) = table.lookup(&v5).unwrap();
        assert_eq!(id1, id3);

        // Same name, different layout: must intern separately.
        let twin =
            Device::new(v5.name(), v5.family(), v5.rows() + 1, v5.columns().to_vec()).unwrap();
        let (id4, _, inserted4) = table.insert(&twin, Arc::new(DeviceGeometry::new(&twin)));
        assert!(inserted4);
        assert_ne!(id1, id4);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(id1).unwrap().device, v5);
        assert_eq!(table.get(id4).unwrap().device, twin);
        assert!(table.get(DeviceId::from_index(7)).is_none());
    }

    #[test]
    fn plan_key_round_trips_requirements() {
        let req = PrrRequirements::new(Family::Virtex5, 1303, 1201, 1140, 8, 3);
        let key = PlanKey::new(&req, DeviceId::from_index(3));
        assert_eq!(key.requirements(), req);
        // clb_req is derived, not stored: same five numbers → same key.
        assert_eq!(key, PlanKey::new(&req, DeviceId::from_index(3)));
        assert_ne!(
            key.packed(),
            PlanKey::new(&req, DeviceId::from_index(4)).packed()
        );
    }

    #[test]
    fn sharded_map_is_first_writer_wins() {
        let map: Sharded<PlanKey, u64> = Sharded::new();
        let req = PrrRequirements::new(Family::Virtex6, 10, 10, 10, 0, 0);
        let key = PlanKey::new(&req, DeviceId::from_index(0));
        assert!(map.get(&key).is_none());
        let (v, inserted) = map.insert_or_get(key, 7);
        assert!(inserted);
        assert_eq!(v, 7);
        let (v, inserted) = map.insert_or_get(key, 9);
        assert!(!inserted, "existing entry wins");
        assert_eq!(v, 7);
        assert_eq!(map.get(&key), Some(7));
        assert_eq!(map.len(), 1);
        assert!(!map.is_empty());
    }

    #[test]
    fn sharded_map_spreads_keys_across_shards() {
        let map: Sharded<PlanKey, usize> = Sharded::new();
        let mut shards_touched = std::collections::HashSet::new();
        for i in 0..512u64 {
            let req = PrrRequirements::new(Family::Virtex5, i, i, i, 0, 0);
            let key = PlanKey::new(&req, DeviceId::from_index(0));
            shards_touched.insert((key.packed() >> 58) as usize & (SHARD_COUNT - 1));
            map.insert_or_get(key, i as usize);
        }
        assert_eq!(map.len(), 512);
        assert!(
            shards_touched.len() > SHARD_COUNT / 2,
            "packed keys must spread over the stripes ({} of {SHARD_COUNT})",
            shards_touched.len()
        );
        let mut seen = 0;
        map.for_each(|_, _| seen += 1);
        assert_eq!(seen, 512);
    }

    #[test]
    fn distinct_devices_get_distinct_ids_across_table() {
        let table = DeviceTable::new();
        for d in [xc5vlx110t(), xc6vlx75t()] {
            table.insert(&d, Arc::new(DeviceGeometry::new(&d)));
        }
        assert_eq!(table.len(), 2);
        let order = table.entries_in_order();
        assert_eq!(order[0].device, xc5vlx110t());
        assert_eq!(order[1].device, xc6vlx75t());
    }
}
