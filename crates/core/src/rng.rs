//! Shared deterministic RNG for workload generation, benchmarks and the
//! annealing placer.
//!
//! One splitmix64 stream, one implementation: before this module the
//! workspace carried three private copies of the same generator
//! (`multitask::task`, `parflow::place`, and the `bench` churn drivers),
//! each with its own sampling helpers. They are consolidated here so
//! every deterministic trajectory in the repo draws from the same,
//! tested kernel.
//!
//! # Determinism contract
//!
//! The stream is a pure function of the initial state: `next_u64` is
//! splitmix64 with the golden-gamma increment, exactly the sequence the
//! previous private copies produced. [`Rng::from_raw`] continues a raw
//! state (bit-compatible with the old `Rng(seed)` constructors, so
//! pinned bench churn sequences and placer trajectories are unchanged);
//! [`Rng::from_seed`] is the *seeding* entry point for user-facing
//! seeds and mixes the seed first — see below.
//!
//! # The `seed | 1` aliasing fix
//!
//! The old workload seeding was `Rng(seed | 1)`: the nonzero guard was
//! applied directly to the user seed, so seeds `2k` and `2k + 1`
//! produced *identical* workloads (every even seed aliased its odd
//! successor). [`Rng::from_seed`] instead mixes the seed through one
//! splitmix64 finalizer **before** the nonzero guard: distinct user
//! seeds land on distinct (pseudo-random) states, and the guard only
//! perturbs the single astronomically-unlikely state that mixes to
//! zero. This is a deliberate behaviour change for `Workload::generate`
//! and friends — every seed now yields a fresh trajectory, and the
//! seed-derived artifacts regenerated for it are noted in
//! `results/README.md`.

/// Minimal deterministic RNG: splitmix64 plus the sampling helpers the
/// workspace's generators need (uniform, exponential, Pareto, Weibull).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng(u64);

/// splitmix64 finalizer: the bijective avalanche mix applied to the
/// advancing counter (and, in [`Rng::from_seed`], to the user seed).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Golden-gamma increment of the splitmix64 counter.
    pub const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Continue a stream from a raw state, bit-compatible with the
    /// historical `Rng(seed)` pattern. Use [`Rng::from_seed`] for
    /// user-facing seeds; use this to preserve an existing pinned
    /// trajectory or to fork a sub-stream from an already-mixed state.
    #[inline]
    pub fn from_raw(state: u64) -> Self {
        Rng(state)
    }

    /// Seed a fresh stream from a user seed: the seed is mixed through
    /// the splitmix64 finalizer *before* the nonzero guard, so adjacent
    /// seeds (`2k` vs `2k + 1`) no longer alias — the flaw in the old
    /// `Rng(seed | 1)` seeding.
    #[inline]
    pub fn from_seed(seed: u64) -> Self {
        Rng(mix(seed) | 1)
    }

    /// Next raw 64-bit draw (splitmix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(Self::GAMMA);
        mix(self.0)
    }

    /// Uniform draw in `[0, n)` by modulo (`0` for `n == 0`).
    ///
    /// Carries the historical generators' modulo bias (≤ one part in
    /// `2⁶⁴ / n`) — kept because pinned workload and churn trajectories
    /// depend on the exact draw sequence. Prefer [`Rng::rand_below`]
    /// for new code.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw in `[0, n)` by widening multiply — no modulo bias
    /// (buckets differ by at most one part in 2⁶⁴). This is the
    /// `parflow` placer's draw; `0` for `n == 0`.
    #[inline]
    pub fn rand_below(&mut self, n: usize) -> usize {
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform draw in `(0, 1]` with 53-bit resolution, clamped away
    /// from zero so it is safe under `ln` and `powf`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12)
    }

    /// Exponentially distributed sample with the given mean
    /// (inverse-transform), truncated to nanoseconds.
    #[inline]
    pub fn exp(&mut self, mean: u64) -> u64 {
        (-(self.unit().ln()) * mean as f64) as u64
    }

    /// Pareto(α)-distributed sample ≥ `min` via inverse transform: the
    /// heavy tail (infinite variance for α ≤ 2) is what makes mixed
    /// module populations fragment the fabric.
    #[inline]
    pub fn pareto(&mut self, min: f64, alpha: f64) -> f64 {
        min / self.unit().powf(1.0 / alpha)
    }

    /// Weibull(shape `k`, scale `λ`)-distributed sample via inverse
    /// transform: `λ · (−ln U)^{1/k}`. Shape `k > 1` concentrates mass
    /// near the scale (the execution-time-variation model: actual
    /// execution times cluster below the WCET), `k = 1` degenerates to
    /// the exponential.
    #[inline]
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        scale * (-(self.unit().ln())).powf(1.0 / shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact sequence the three historical private copies produced
    /// for a raw state — the consolidation must not shift any pinned
    /// trajectory.
    #[test]
    fn raw_stream_matches_historical_splitmix() {
        let mut legacy_state = 42u64;
        let mut legacy = move || {
            legacy_state = legacy_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = legacy_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut rng = Rng::from_raw(42);
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), legacy());
        }
    }

    #[test]
    fn from_seed_breaks_adjacent_seed_aliasing() {
        // The old `Rng(seed | 1)` made these four pairs identical.
        for k in [0u64, 1, 7, 1000] {
            let mut even = Rng::from_seed(2 * k);
            let mut odd = Rng::from_seed(2 * k + 1);
            assert_ne!(
                (0..8).map(|_| even.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| odd.next_u64()).collect::<Vec<_>>(),
                "seeds {} and {} alias",
                2 * k,
                2 * k + 1
            );
        }
    }

    #[test]
    fn from_seed_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::from_seed(9);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::from_seed(9);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn below_handles_zero_and_stays_in_range() {
        let mut r = Rng::from_seed(3);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            assert!(r.rand_below(17) < 17);
        }
        assert_eq!(r.rand_below(0), 0);
    }

    #[test]
    fn exp_tracks_mean() {
        let mut r = Rng::from_seed(11);
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|_| r.exp(10_000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((8_500.0..11_500.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed_above_min() {
        let mut r = Rng::from_seed(5);
        let samples: Vec<f64> = (0..10_000).map(|_| r.pareto(100.0, 1.2)).collect();
        assert!(samples.iter().all(|&x| x >= 100.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1_000.0, "tail too light: max {max}");
    }

    #[test]
    fn weibull_shape_concentrates_near_scale() {
        let mut r = Rng::from_seed(7);
        let n = 20_000;
        // k = 3: mean ≈ 0.893 λ, sd ≈ 0.32 λ — concentrated.
        let mean3: f64 = (0..n).map(|_| r.weibull(3.0, 1.0)).sum::<f64>() / n as f64;
        assert!((0.82..0.97).contains(&mean3), "k=3 mean {mean3}");
        // k = 1 degenerates to exponential: mean = λ.
        let mean1: f64 = (0..n).map(|_| r.weibull(1.0, 1.0)).sum::<f64>() / n as f64;
        assert!((0.9..1.1).contains(&mean1), "k=1 mean {mean1}");
    }
}
