//! Error type for cost-model evaluation.

use crate::search::SearchTrace;
use core::fmt;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// Errors from PRR planning.
///
/// Serializable so memoized `Err` plans survive engine-snapshot
/// persist/reload byte-for-byte alongside the `Ok` ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostError {
    /// The synthesis report targets a different family than the device.
    FamilyMismatch {
        /// Family of the synthesis report.
        report: Family,
        /// Family of the target device.
        device: Family,
    },
    /// The PRM requires no resources; there is nothing to place.
    EmptyRequirements,
    /// No PRR satisfying the requirements fits on the device at any height.
    NoFeasiblePlacement {
        /// Target device name.
        device: String,
        /// Full candidate-by-candidate evaluation trace (Fig. 1).
        trace: SearchTrace,
    },
    /// `plan_shared_prr` was called with no PRMs.
    NoPrms,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::FamilyMismatch { report, device } => write!(
                f,
                "synthesis report targets {report} but the device is {device}; \
                 re-synthesize for the target family"
            ),
            CostError::EmptyRequirements => {
                write!(
                    f,
                    "the PRM requires no CLB/DSP/BRAM resources; nothing to place"
                )
            }
            CostError::NoFeasiblePlacement { device, trace } => write!(
                f,
                "no feasible PRR placement on `{device}` (evaluated {} heights)",
                trace.candidates.len()
            ),
            CostError::NoPrms => write!(f, "a shared PRR needs at least one PRM"),
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_family_mismatch() {
        let e = CostError::FamilyMismatch {
            report: Family::Virtex5,
            device: Family::Virtex6,
        };
        let msg = e.to_string();
        assert!(msg.contains("Virtex-5") && msg.contains("Virtex-6"));
    }
}
