//! Sizing one PRR shared by several time-multiplexed PRMs.
//!
//! The paper (§III.B): *"For multiple PRMs that share the same PRR, each
//! PRM has a unique H, and the largest `W_CLB`, `W_DSP`, and `W_BRAM`
//! across all of the PRR's associated PRMs dictates the number of CLB, DSP,
//! and BRAM columns in the PRR."* Operationally: at each candidate height
//! the shared PRR takes the per-kind column maximum over its PRMs, and the
//! height is chosen (as in the single-PRM flow) to minimize the predicted
//! partial bitstream of the *shared* organization.

use crate::error::CostError;
use crate::prr::Utilization;
use crate::requirements::PrrRequirements;
use crate::search::PrrPlan;
use fabric::Device;
use serde::{Deserialize, Serialize};
use synth::SynthReport;

/// A shared-PRR plan: the common organization plus each PRM's utilization
/// of it (the per-PRM internal fragmentation a designer trades off).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedPrrPlan {
    /// The shared PRR (sized by the component-wise worst case).
    pub plan: PrrPlan,
    /// Per-PRM utilization of the shared PRR, in input order.
    pub per_prm_utilization: Vec<Utilization>,
}

/// Plan one PRR to host all `reports` (time-multiplexed).
pub fn plan_shared_prr(
    reports: &[SynthReport],
    device: &Device,
) -> Result<SharedPrrPlan, CostError> {
    if reports.is_empty() {
        return Err(CostError::NoPrms);
    }
    for r in reports {
        if r.family != device.family() {
            return Err(CostError::FamilyMismatch {
                report: r.family,
                device: device.family(),
            });
        }
    }
    let reqs: Vec<PrrRequirements> = reports.iter().map(PrrRequirements::from_report).collect();
    let combined = reqs.iter().skip(1).fold(reqs[0], |acc, r| acc.max(r));
    if combined.is_empty() {
        return Err(CostError::EmptyRequirements);
    }

    // Per-kind maximum of each PRM's organization at each height is the
    // organization of the component-wise max requirements, since
    // Eqs. 2/3/5 are monotone in the numerator (and Eq. 4's row constraint
    // must hold for the max DSP_req). So the shared search is the single-
    // PRM search over the combined requirements.
    let candidates = (1..=device.rows())
        .map(|h| crate::search::evaluate_height(&combined, device, h))
        .collect();
    let plan = crate::search::select_best(&combined, device, candidates)?;
    let per_prm_utilization = reqs
        .iter()
        .map(|r| plan.organization.utilization(r))
        .collect();
    Ok(SharedPrrPlan {
        plan,
        per_prm_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use synth::PaperPrm;

    fn reports(fam: Family) -> Vec<SynthReport> {
        PaperPrm::ALL.iter().map(|p| p.synth_report(fam)).collect()
    }

    #[test]
    fn shared_prr_covers_every_prm() {
        let device = xc6vlx75t();
        let rs = reports(Family::Virtex6);
        let shared = plan_shared_prr(&rs, &device).unwrap();
        let avail = shared.plan.organization.available();
        for r in &rs {
            let req = PrrRequirements::from_report(r);
            assert!(avail.clb() >= req.clb_req, "{}", r.module);
            assert!(avail.dsp() >= req.dsp_req, "{}", r.module);
            assert!(avail.bram() >= req.bram_req, "{}", r.module);
        }
        assert_eq!(shared.per_prm_utilization.len(), 3);
    }

    #[test]
    fn shared_prr_at_least_as_large_as_each_individual() {
        let device = xc6vlx75t();
        let rs = reports(Family::Virtex6);
        let shared = plan_shared_prr(&rs, &device).unwrap();
        for r in &rs {
            let single = crate::search::plan_prr(r, &device).unwrap();
            assert!(
                shared.plan.bitstream_bytes >= single.bitstream_bytes,
                "{} single plan larger than shared",
                r.module
            );
        }
    }

    /// Sharing a PRR between FIR and SDRAM on the LX110T: the DSP row
    /// constraint (FIR needs 32 DSPs from the single column) still binds,
    /// so H >= 4.
    #[test]
    fn shared_prr_respects_worst_case_dsp_rows() {
        let device = xc5vlx110t();
        let rs = vec![
            PaperPrm::Fir.synth_report(Family::Virtex5),
            PaperPrm::Sdram.synth_report(Family::Virtex5),
        ];
        let shared = plan_shared_prr(&rs, &device).unwrap();
        assert!(shared.plan.organization.height >= 4);
        assert_eq!(shared.plan.organization.dsp_cols, 1);
    }

    /// All three paper PRMs sharing one PRR on the LX110T: FIR's 32 DSPs
    /// from the single DSP column force H >= 4 (Eq. 4), and MIPS's BRAMs
    /// force a BRAM column into the same window. The trace records the
    /// Eq. 4 rejections for H = 1..3.
    #[test]
    fn shared_prr_all_three_on_lx110t() {
        let device = xc5vlx110t();
        let shared = plan_shared_prr(&reports(Family::Virtex5), &device).unwrap();
        let org = &shared.plan.organization;
        assert!(org.height >= 4);
        assert_eq!(org.dsp_cols, 1);
        assert!(org.bram_cols >= 1);
        let avail = org.available();
        assert!(avail.clb() >= 328 && avail.dsp() >= 32 && avail.bram() >= 6);
        assert!(shared
            .plan
            .trace
            .candidates
            .iter()
            .take(3)
            .all(|c| matches!(
                c.outcome,
                crate::search::CandidateOutcome::DspRowsInsufficient { min_height: 4 }
            )));
    }

    #[test]
    fn empty_input_is_rejected() {
        let device = xc5vlx110t();
        assert!(matches!(
            plan_shared_prr(&[], &device),
            Err(CostError::NoPrms)
        ));
    }

    #[test]
    fn mixed_families_are_rejected() {
        let device = xc5vlx110t();
        let rs = vec![
            PaperPrm::Fir.synth_report(Family::Virtex5),
            PaperPrm::Mips.synth_report(Family::Virtex6),
        ];
        assert!(matches!(
            plan_shared_prr(&rs, &device),
            Err(CostError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn singleton_shared_matches_single_plan() {
        let device = xc5vlx110t();
        let r = PaperPrm::Sdram.synth_report(Family::Virtex5);
        let shared = plan_shared_prr(std::slice::from_ref(&r), &device).unwrap();
        let single = crate::search::plan_prr(&r, &device).unwrap();
        assert_eq!(shared.plan.organization, single.organization);
        assert_eq!(shared.plan.bitstream_bytes, single.bitstream_bytes);
    }
}
