//! The Fig. 1 flow: search device heights for the best feasible PRR.
//!
//! For each candidate height `H` from 1 to the device's row count `R`, the
//! flow recomputes the organization (Eqs. 2–6), checks that the required
//! columns exist contiguously on the device (no IOB/CLK columns inside the
//! span), predicts the partial bitstream size (Eqs. 18–23), and finally
//! selects the candidate with the **smallest predicted bitstream**, breaking
//! ties by smaller `PRR_size` and then smaller `H`. This selection criterion
//! is the one consistent with the paper's reported Table V results — e.g.
//! FIR on the LX110T picks H=5 (bitstream 83 040 B, PRR size 15) over the
//! also-feasible H=4 (90 100 B, size 16); see `DESIGN.md` §6.

use crate::bits::bitstream_size_bytes;
use crate::error::CostError;
use crate::metrics::Metrics;
use crate::prr::{OrganizationError, PrrOrganization, Utilization};
use crate::requirements::PrrRequirements;
use crate::shard::{DeviceEntry, DeviceId, EngineToken};
use fabric::{Device, DeviceGeometry, Window, WindowRequest};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use synth::SynthReport;

/// Cap on the extra DSP columns the padded-window fallback will absorb
/// beyond the Eqs. 2–5 requirement.
///
/// DSP columns are scarce (1–12 per device in the database) and widely
/// separated by CLB columns, so a window forced to swallow many extra DSP
/// columns also swallows the CLB columns between them — which the
/// unbounded CLB-padding axis already covers. The cap exists purely to
/// bound the enumeration (≤ `(cap+1)²` DSP×BRAM combinations per CLB
/// padding level); `find_padded_window` debug-asserts, and
/// `padding_caps_lose_no_feasible_plan` in this module's tests verifies,
/// that no database device loses a feasible plan to it.
pub const MAX_PAD_DSP_COLS: u32 = 4;

/// Cap on the extra BRAM columns the padded-window fallback will absorb
/// beyond the Eqs. 2–5 requirement. Same rationale and same no-lost-plans
/// guarantee as [`MAX_PAD_DSP_COLS`].
pub const MAX_PAD_BRAM_COLS: u32 = 4;

/// How a `(W_CLB, W_DSP, W_BRAM)` column composition resolves on a device.
///
/// Window existence is height-independent, and the padded-fallback winner
/// is too (the Eq. 18 bitstream is affine in `H` with height-independent
/// per-row weights, so the `(bytes, pad)` ordering of padding options —
/// ties included — is the same at every height). One resolution therefore
/// serves every candidate height that produces the same base composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompResolution {
    /// An exact-composition window exists.
    Exact,
    /// No exact window; the cheapest feasible padding is `pad` extra
    /// `[CLB, DSP, BRAM]` columns.
    Padded {
        /// Winning extra columns per kind.
        pad: [u32; 3],
    },
    /// No window exists even with padding.
    Infeasible,
}

/// Reusable per-worker scratch for the padded-window fallback and the
/// per-plan composition-resolution cache.
///
/// [`find_padded_window`] enumerates up to ~1000 padded organizations per
/// infeasible composition; reusing one scratch across the plans a sweep
/// worker processes keeps that enumeration allocation-free after warm-up.
/// The cached planning paths additionally record, per plan, how each
/// distinct base composition resolved ([`CompResolution`]) so the padded
/// enumeration runs once per composition instead of once per height. A
/// fresh `PlanScratch::default()` is always valid — results never depend
/// on scratch contents, only allocation reuse does.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    options: Vec<(u64, [u32; 3], PrrOrganization)>,
    /// Per-plan composition → resolution cache (linear map: a plan touches
    /// at most `rows` distinct compositions). Cleared at plan start.
    resolutions: Vec<((u32, u32, u32), CompResolution)>,
    /// Cumulative count of padded-fallback enumerations resolved through
    /// this scratch (never reset; callers read deltas).
    padded_resolutions: u64,
    /// Recently resolved device interns, tagged with the owning engine's
    /// token (see [`EngineToken`]): a repeat plan against the same engine
    /// and device skips the layout hash and the interner's shared read
    /// lock entirely — one structural comparison against the entry's own
    /// device copy. Bounded; purely an accelerator, never authoritative.
    device_cache: Vec<(EngineToken, DeviceId, Arc<DeviceEntry>)>,
}

/// Entries kept in [`PlanScratch`]'s device-resolution cache. Sweeps
/// touch a handful of devices per worker; the cache is scanned linearly
/// so it must stay small.
const DEVICE_CACHE_CAP: usize = 8;

impl PlanScratch {
    /// Cumulative number of padded-fallback resolutions (full padding
    /// enumerations) performed through this scratch. Monotonic; the batch
    /// engine folds per-plan deltas into its metrics registry.
    pub fn padded_resolution_count(&self) -> u64 {
        self.padded_resolutions
    }

    /// The cached intern of `device` under the engine identified by
    /// `token`, if present. Structural equality against the interned copy
    /// keeps a stale or colliding entry from ever resolving wrong.
    pub(crate) fn cached_device(
        &self,
        token: EngineToken,
        device: &Device,
    ) -> Option<(DeviceId, Arc<DeviceEntry>)> {
        self.device_cache
            .iter()
            .find(|(t, _, entry)| *t == token && entry.device == *device)
            .map(|(_, id, entry)| (*id, Arc::clone(entry)))
    }

    /// Remember that `device` interned to `(id, entry)` under the engine
    /// identified by `token`, evicting the oldest entry at capacity.
    pub(crate) fn cache_device(
        &mut self,
        token: EngineToken,
        id: DeviceId,
        entry: &Arc<DeviceEntry>,
    ) {
        if self.device_cache.len() >= DEVICE_CACHE_CAP {
            self.device_cache.remove(0);
        }
        self.device_cache.push((token, id, Arc::clone(entry)));
    }
}

/// Outcome of evaluating one candidate height.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CandidateOutcome {
    /// A placeable PRR with its predicted bitstream size.
    Feasible {
        /// Organization at this height. When `padded_clb_cols > 0`, its
        /// `clb_cols` already includes the padding.
        organization: PrrOrganization,
        /// Leftmost placement window on the device.
        window: Window,
        /// Predicted `S_bitstream` in bytes.
        bitstream_bytes: u64,
        /// Extra `[CLB, DSP, BRAM]` columns beyond the Eqs. 2–5 counts
        /// that had to be absorbed because no exact-composition window
        /// exists on the device at this height (`[0, 0, 0]` for an exact
        /// fit). Padding is a designer-realistic fallback beyond the
        /// paper's flow, chosen to minimize the padded bitstream; it never
        /// activates for the paper's evaluation points.
        padded_cols: [u32; 3],
    },
    /// Eq. (4) case: a single-DSP-column device needs at least `min_height`
    /// rows to supply the PRM's DSPs.
    DspRowsInsufficient {
        /// Minimum feasible height.
        min_height: u32,
    },
    /// The organization is arithmetically valid but no contiguous column
    /// window with that composition exists on the device.
    NoWindow {
        /// The organization that failed to place.
        organization: PrrOrganization,
    },
}

/// One row of the Fig. 1 search trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Candidate height `H`.
    pub height: u32,
    /// What happened at this height.
    pub outcome: CandidateOutcome,
}

impl Candidate {
    /// Bitstream size if feasible.
    pub fn bitstream_bytes(&self) -> Option<u64> {
        match &self.outcome {
            CandidateOutcome::Feasible {
                bitstream_bytes, ..
            } => Some(*bitstream_bytes),
            _ => None,
        }
    }
}

/// The complete candidate-by-candidate record of one search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Device searched.
    pub device: String,
    /// One entry per height 1..=R, in order.
    pub candidates: Vec<Candidate>,
}

/// A selected PRR: the model's final answer for one PRM on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrrPlan {
    /// The requirements that were planned for.
    pub requirements: PrrRequirements,
    /// Chosen organization.
    pub organization: PrrOrganization,
    /// Physical placement (leftmost feasible window, bottom rows).
    pub window: Window,
    /// Predicted partial bitstream size in bytes (Eq. 18).
    pub bitstream_bytes: u64,
    /// Resource utilization of the PRM inside the chosen PRR.
    pub utilization: Utilization,
    /// Full search trace (Fig. 1 reproduction).
    pub trace: SearchTrace,
}

/// Plan the PRR for one synthesis report on `device`.
///
/// ```
/// use fabric::database::xc6vlx75t;
/// use synth::PaperPrm;
///
/// let device = xc6vlx75t();
/// let plan = prcost::plan_prr(&PaperPrm::Sdram.synth_report(device.family()), &device)?;
/// assert_eq!(plan.organization.height, 1);
/// assert_eq!(plan.organization.clb_cols, 2);
/// assert_eq!(plan.bitstream_bytes, 23_792);
/// # Ok::<(), prcost::CostError>(())
/// ```
pub fn plan_prr(report: &SynthReport, device: &Device) -> Result<PrrPlan, CostError> {
    let metrics = Metrics::global();
    metrics.plans.incr();
    let result = metrics.time("plan_prr", || {
        if report.family != device.family() {
            return Err(CostError::FamilyMismatch {
                report: report.family,
                device: device.family(),
            });
        }
        plan_prr_from_requirements(&PrrRequirements::from_report(report), device)
    });
    match &result {
        Ok(_) => metrics.plans_feasible.incr(),
        Err(_) => metrics.plans_infeasible.incr(),
    }
    result
}

/// [`plan_prr`], answered through a precomputed [`DeviceGeometry`] and a
/// reusable [`PlanScratch`].
///
/// Returns exactly what [`plan_prr`] returns for the same inputs (the
/// geometry's window answers are identical to [`Device::find_window`]'s,
/// and the padded-organization selection is byte-for-byte preserved), but
/// every window probe is a lock-free O(1) composition-index lookup, and
/// the planning loop is **height-factored**: each distinct base
/// composition — including its padded-fallback enumeration, which the
/// per-height loop used to regenerate and re-sort at every infeasible
/// height — resolves once per plan and is reused across all heights that
/// produce it. This is the planning path the batch
/// [`crate::engine::Engine`] drives; `geometry` must have been derived
/// from `device`.
///
/// Unlike [`plan_prr`], this records no global metrics — the engine owns
/// its own [`Metrics`] registry and times whole plans around this call.
pub fn plan_prr_cached(
    report: &SynthReport,
    device: &Device,
    geometry: &DeviceGeometry,
    scratch: &mut PlanScratch,
) -> Result<PrrPlan, CostError> {
    plan_requirements_cached(
        &PrrRequirements::from_report(report),
        device,
        geometry,
        scratch,
    )
}

/// [`plan_prr_cached`] from explicit requirements, skipping the synthesis
/// report entirely.
///
/// This is the planning primitive under the memoizing engine and the
/// async planning service: both key their memos on `(requirements,
/// device)` — a plan is a pure function of exactly these inputs — so on a
/// miss they plan from the requirements they already hold instead of
/// reconstituting a report. Behaviorally identical to
/// [`plan_prr_from_requirements`] (the family and emptiness rejections
/// happen in the same order), with window probes answered from
/// `geometry`'s composition index and the padded fallback height-factored
/// through `scratch`.
pub fn plan_requirements_cached(
    req: &PrrRequirements,
    device: &Device,
    geometry: &DeviceGeometry,
    scratch: &mut PlanScratch,
) -> Result<PrrPlan, CostError> {
    if req.family != device.family() {
        return Err(CostError::FamilyMismatch {
            report: req.family,
            device: device.family(),
        });
    }
    if req.is_empty() {
        return Err(CostError::EmptyRequirements);
    }
    scratch.resolutions.clear();
    let mut candidates = Vec::with_capacity(device.rows() as usize);
    for h in 1..=device.rows() {
        candidates.push(evaluate_height_cached(req, device, h, geometry, scratch));
    }
    select_best(req, device, candidates)
}

/// The seed per-height planning loop, driven through an arbitrary window
/// `finder`: one probe per height plus a full padded enumeration at every
/// infeasible height, with no composition reuse.
///
/// Kept (hidden) so the `window_index` benchmark can drive the frozen
/// `fabric::reference::MemoGeometry` through the exact pre-index planning
/// shape as an honest baseline. Returns what [`plan_prr`] returns for the
/// same inputs whenever `finder` agrees with [`Device::find_window`].
#[doc(hidden)]
pub fn plan_prr_via_finder(
    report: &SynthReport,
    device: &Device,
    finder: &dyn Fn(&WindowRequest) -> Option<Window>,
    scratch: &mut PlanScratch,
) -> Result<PrrPlan, CostError> {
    if report.family != device.family() {
        return Err(CostError::FamilyMismatch {
            report: report.family,
            device: device.family(),
        });
    }
    let req = PrrRequirements::from_report(report);
    if req.is_empty() {
        return Err(CostError::EmptyRequirements);
    }
    let mut candidates = Vec::with_capacity(device.rows() as usize);
    for h in 1..=device.rows() {
        candidates.push(evaluate_height_with(&req, device, h, finder, scratch));
    }
    select_best(&req, device, candidates)
}

/// Plan the PRR for explicit requirements on `device`.
pub fn plan_prr_from_requirements(
    req: &PrrRequirements,
    device: &Device,
) -> Result<PrrPlan, CostError> {
    if req.family != device.family() {
        return Err(CostError::FamilyMismatch {
            report: req.family,
            device: device.family(),
        });
    }
    if req.is_empty() {
        return Err(CostError::EmptyRequirements);
    }

    let mut candidates = Vec::with_capacity(device.rows() as usize);
    for h in 1..=device.rows() {
        candidates.push(evaluate_height(req, device, h));
    }
    select_best(req, device, candidates)
}

/// All candidate evaluations for `req` on `device`, one per height, in
/// ascending height order — the raw material of the Fig. 1 search, also
/// consumed by the multi-PRR automatic floorplanner (`parflow`), which
/// needs every feasible organization rather than just the winner.
pub fn candidates_for(req: &PrrRequirements, device: &Device) -> Vec<Candidate> {
    if req.is_empty() || req.family != device.family() {
        return Vec::new();
    }
    (1..=device.rows())
        .map(|h| evaluate_height(req, device, h))
        .collect()
}

/// [`candidates_for`], with window probes answered through a precomputed
/// [`DeviceGeometry`] and the padded-fallback enumeration buffered in
/// `scratch`.
///
/// Returns exactly what [`candidates_for`] returns for the same inputs
/// (the geometry's window answers are identical to
/// [`Device::find_window`]'s), height-factored like [`plan_prr_cached`]:
/// each distinct base composition resolves once per call and serves every
/// height. Callers that evaluate several requirement sets against one
/// device — the multi-PRR floorplanner above all — share one geometry so
/// every probe is a lock-free index lookup instead of a column rescan.
/// `geometry` must have been derived from `device`.
pub fn candidates_for_cached(
    req: &PrrRequirements,
    device: &Device,
    geometry: &DeviceGeometry,
    scratch: &mut PlanScratch,
) -> Vec<Candidate> {
    if req.is_empty() || req.family != device.family() {
        return Vec::new();
    }
    scratch.resolutions.clear();
    (1..=device.rows())
        .map(|h| evaluate_height_cached(req, device, h, geometry, scratch))
        .collect()
}

/// Evaluate one candidate height of the Fig. 1 flow: organization
/// (Eqs. 2–6), exact window search, and — only when no exact-composition
/// window exists — minimal CLB-column padding.
pub(crate) fn evaluate_height(req: &PrrRequirements, device: &Device, h: u32) -> Candidate {
    let finder = |r: &WindowRequest| device.find_window(r);
    evaluate_height_with(req, device, h, &finder, &mut PlanScratch::default())
}

/// [`evaluate_height`] with the window search routed through `finder`
/// (either [`Device::find_window`] or a cached [`DeviceGeometry`]) and the
/// padded-fallback enumeration buffered in `scratch`.
fn evaluate_height_with(
    req: &PrrRequirements,
    device: &Device,
    h: u32,
    finder: &dyn Fn(&WindowRequest) -> Option<Window>,
    scratch: &mut PlanScratch,
) -> Candidate {
    let single_dsp = device.dsp_column_count() == 1;
    let outcome = match PrrOrganization::for_height(req, h, single_dsp) {
        Err(OrganizationError::EmptyRequirements) => {
            unreachable!("callers reject empty requirements")
        }
        Err(OrganizationError::SingleDspColumnNeedsRows { min_height }) => {
            CandidateOutcome::DspRowsInsufficient { min_height }
        }
        Ok(org) => {
            let exact = finder(&org.window_request());
            let placed = match exact {
                Some(w) => Some((org, w, [0u32; 3])),
                None => find_padded_window(&org, device, finder, scratch),
            };
            match placed {
                None => CandidateOutcome::NoWindow { organization: org },
                Some((org, window, padded_cols)) => CandidateOutcome::Feasible {
                    bitstream_bytes: bitstream_size_bytes(&org),
                    organization: org,
                    window,
                    padded_cols,
                },
            }
        }
    };
    Candidate { height: h, outcome }
}

/// [`evaluate_height`] with the window search answered from a
/// [`DeviceGeometry`] composition index and the plan's
/// composition-resolution cache: the (potentially ~1000-option) padded
/// enumeration runs at most once per distinct base composition, not once
/// per height. Byte-identical to [`evaluate_height`] — see
/// [`CompResolution`] for why the resolution is height-invariant.
fn evaluate_height_cached(
    req: &PrrRequirements,
    device: &Device,
    h: u32,
    geometry: &DeviceGeometry,
    scratch: &mut PlanScratch,
) -> Candidate {
    let single_dsp = device.dsp_column_count() == 1;
    let outcome = match PrrOrganization::for_height(req, h, single_dsp) {
        Err(OrganizationError::EmptyRequirements) => {
            unreachable!("callers reject empty requirements")
        }
        Err(OrganizationError::SingleDspColumnNeedsRows { min_height }) => {
            CandidateOutcome::DspRowsInsufficient { min_height }
        }
        Ok(org) => match resolve_composition(&org, device, geometry, scratch) {
            CompResolution::Infeasible => CandidateOutcome::NoWindow { organization: org },
            CompResolution::Exact => {
                let window = geometry
                    .find_window(device, &org.window_request())
                    .expect("resolved exact composition has a window");
                CandidateOutcome::Feasible {
                    bitstream_bytes: bitstream_size_bytes(&org),
                    organization: org,
                    window,
                    padded_cols: [0; 3],
                }
            }
            CompResolution::Padded { pad } => {
                let padded = PrrOrganization {
                    clb_cols: org.clb_cols + pad[0],
                    dsp_cols: org.dsp_cols + pad[1],
                    bram_cols: org.bram_cols + pad[2],
                    ..org
                };
                let window = geometry
                    .find_window(device, &padded.window_request())
                    .expect("resolved padded composition has a window");
                CandidateOutcome::Feasible {
                    bitstream_bytes: bitstream_size_bytes(&padded),
                    organization: padded,
                    window,
                    padded_cols: pad,
                }
            }
        },
    };
    Candidate { height: h, outcome }
}

/// Resolve how `org`'s base composition places on `device`, consulting the
/// plan's resolution cache first. A cache miss costs one index probe
/// (exact case) or one padded enumeration (fallback case); every later
/// height with the same composition is a linear-map hit.
fn resolve_composition(
    org: &PrrOrganization,
    device: &Device,
    geometry: &DeviceGeometry,
    scratch: &mut PlanScratch,
) -> CompResolution {
    let key = (org.clb_cols, org.dsp_cols, org.bram_cols);
    if let Some((_, r)) = scratch.resolutions.iter().find(|(k, _)| *k == key) {
        return *r;
    }
    let resolution = if geometry
        .leftmost_start(org.clb_cols, org.dsp_cols, org.bram_cols)
        .is_some()
    {
        CompResolution::Exact
    } else {
        scratch.padded_resolutions += 1;
        match find_padded_composition(org, device, geometry) {
            Some(pad) => CompResolution::Padded { pad },
            None => CompResolution::Infeasible,
        }
    };
    scratch.resolutions.push((key, resolution));
    resolution
}

/// The padded-fallback search of [`find_padded_window`], answered from
/// the composition index: since feasibility of each padding option is an
/// O(1) probe, the sort-then-probe-in-order loop collapses to a single
/// min-scan over the *feasible* options — `bitstream_size_bytes` is never
/// evaluated for infeasible paddings and nothing is sorted. Picks the
/// same winner: the seed sorts stably by `(bytes, pad_sum)` over
/// generation order and takes the first feasible entry, which is exactly
/// the generation-order-first minimum of `(bytes, pad_sum)` over feasible
/// entries. Returns the winning pad counts, or None if no capped padding
/// is feasible (re-checked uncapped in debug builds, like the seed path).
fn find_padded_composition(
    org: &PrrOrganization,
    device: &Device,
    geometry: &DeviceGeometry,
) -> Option<[u32; 3]> {
    let found = find_padded_composition_with_caps(
        org,
        device,
        geometry,
        MAX_PAD_DSP_COLS,
        MAX_PAD_BRAM_COLS,
    );
    #[cfg(debug_assertions)]
    if found.is_none() {
        debug_assert!(
            find_padded_composition_with_caps(org, device, geometry, u32::MAX, u32::MAX).is_none(),
            "padding caps hid a feasible plan for {org:?} on {}",
            device.name()
        );
    }
    found
}

/// [`find_padded_composition`] with explicit DSP/BRAM padding caps.
fn find_padded_composition_with_caps(
    org: &PrrOrganization,
    device: &Device,
    geometry: &DeviceGeometry,
    dsp_cap: u32,
    bram_cap: u32,
) -> Option<[u32; 3]> {
    let counts = device.column_counts();
    let max_clb = (counts.clb() as u32).saturating_sub(org.clb_cols);
    let max_dsp = (counts.dsp() as u32)
        .saturating_sub(org.dsp_cols)
        .min(dsp_cap);
    let max_bram = (counts.bram() as u32)
        .saturating_sub(org.bram_cols)
        .min(bram_cap);

    let mut best: Option<(u64, u32, [u32; 3])> = None;
    for ec in 0..=max_clb {
        for ed in 0..=max_dsp {
            for eb in 0..=max_bram {
                if ec + ed + eb == 0 {
                    continue;
                }
                if geometry
                    .leftmost_start(org.clb_cols + ec, org.dsp_cols + ed, org.bram_cols + eb)
                    .is_none()
                {
                    continue;
                }
                let padded = PrrOrganization {
                    clb_cols: org.clb_cols + ec,
                    dsp_cols: org.dsp_cols + ed,
                    bram_cols: org.bram_cols + eb,
                    ..*org
                };
                let key = (bitstream_size_bytes(&padded), ec + ed + eb);
                // Strict < keeps the earliest generated option on ties,
                // matching the seed's stable sort.
                if best.is_none_or(|(bytes, pads, _)| key < (bytes, pads)) {
                    best = Some((key.0, key.1, [ec, ed, eb]));
                }
            }
        }
    }
    best.map(|(_, _, pad)| pad)
}

/// When no exact-composition window exists, absorb extra columns:
/// enumerate small paddings of each kind, order them by the padded
/// organization's predicted bitstream (the search objective), and take the
/// cheapest one with a real window. The enumeration buffer lives in
/// `scratch` so sweep workers stop allocating here after warm-up; the
/// stable sort over identical insertion order keeps results byte-for-byte
/// independent of scratch reuse. In debug builds, a capped enumeration
/// that comes up empty is re-checked uncapped to prove the
/// [`MAX_PAD_DSP_COLS`]/[`MAX_PAD_BRAM_COLS`] caps hid no feasible plan.
fn find_padded_window(
    org: &PrrOrganization,
    device: &Device,
    finder: &dyn Fn(&WindowRequest) -> Option<Window>,
    scratch: &mut PlanScratch,
) -> Option<(PrrOrganization, Window, [u32; 3])> {
    let found = find_padded_window_with_caps(
        org,
        device,
        finder,
        scratch,
        MAX_PAD_DSP_COLS,
        MAX_PAD_BRAM_COLS,
    );
    #[cfg(debug_assertions)]
    if found.is_none() {
        debug_assert!(
            find_padded_window_with_caps(org, device, finder, scratch, u32::MAX, u32::MAX)
                .is_none(),
            "padding caps hid a feasible plan for {org:?} on {}",
            device.name()
        );
    }
    found
}

/// [`find_padded_window`] with explicit DSP/BRAM padding caps. The public
/// planning paths pass [`MAX_PAD_DSP_COLS`]/[`MAX_PAD_BRAM_COLS`]; the
/// uncapped variant (`u32::MAX`, clamped by device column counts) serves
/// as the oracle proving the caps lose no feasible plan.
fn find_padded_window_with_caps(
    org: &PrrOrganization,
    device: &Device,
    finder: &dyn Fn(&WindowRequest) -> Option<Window>,
    scratch: &mut PlanScratch,
    dsp_cap: u32,
    bram_cap: u32,
) -> Option<(PrrOrganization, Window, [u32; 3])> {
    let counts = device.column_counts();
    let max_clb = (counts.clb() as u32).saturating_sub(org.clb_cols);
    let max_dsp = (counts.dsp() as u32)
        .saturating_sub(org.dsp_cols)
        .min(dsp_cap);
    let max_bram = (counts.bram() as u32)
        .saturating_sub(org.bram_cols)
        .min(bram_cap);

    let options = &mut scratch.options;
    options.clear();
    for ec in 0..=max_clb {
        for ed in 0..=max_dsp {
            for eb in 0..=max_bram {
                if ec + ed + eb == 0 {
                    continue;
                }
                let padded = PrrOrganization {
                    clb_cols: org.clb_cols + ec,
                    dsp_cols: org.dsp_cols + ed,
                    bram_cols: org.bram_cols + eb,
                    ..*org
                };
                options.push((bitstream_size_bytes(&padded), [ec, ed, eb], padded));
            }
        }
    }
    options.sort_by_key(|(bytes, pad, _)| (*bytes, pad[0] + pad[1] + pad[2]));
    for (_, pad, padded) in options.iter() {
        if let Some(w) = finder(&padded.window_request()) {
            return Some((*padded, w, *pad));
        }
    }
    None
}

/// Pick the best feasible candidate: minimum predicted bitstream, then
/// minimum `PRR_size`, then minimum height.
pub(crate) fn select_best(
    req: &PrrRequirements,
    device: &Device,
    candidates: Vec<Candidate>,
) -> Result<PrrPlan, CostError> {
    let mut best: Option<(u64, u64, u32, PrrOrganization, Window)> = None;
    for c in &candidates {
        if let CandidateOutcome::Feasible {
            organization,
            window,
            bitstream_bytes,
            ..
        } = &c.outcome
        {
            let key = (*bitstream_bytes, organization.prr_size(), c.height);
            if best
                .as_ref()
                .is_none_or(|(bb, bs, bh, ..)| key < (*bb, *bs, *bh))
            {
                best = Some((
                    *bitstream_bytes,
                    organization.prr_size(),
                    c.height,
                    *organization,
                    window.clone(),
                ));
            }
        }
    }
    let trace = SearchTrace {
        device: device.name().to_string(),
        candidates,
    };
    match best {
        None => Err(CostError::NoFeasiblePlacement {
            device: device.name().to_string(),
            trace,
        }),
        Some((bytes, _, _, org, window)) => Ok(PrrPlan {
            requirements: *req,
            utilization: org.utilization(req),
            organization: org,
            window,
            bitstream_bytes: bytes,
            trace,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use synth::PaperPrm;

    /// The headline Table V reproduction: the search must select exactly
    /// the paper's PRR organization for all six PRM/device pairs.
    #[test]
    fn table5_organizations_selected() {
        let v5 = xc5vlx110t();
        let v6 = xc6vlx75t();
        // (prm, device, H, W_CLB, W_DSP, W_BRAM)
        let cases = [
            (PaperPrm::Fir, &v5, 5, 2, 1, 0),
            (PaperPrm::Mips, &v5, 1, 17, 1, 2),
            (PaperPrm::Sdram, &v5, 1, 3, 0, 0),
            (PaperPrm::Fir, &v6, 1, 5, 2, 0),
            (PaperPrm::Mips, &v6, 1, 11, 1, 1),
            (PaperPrm::Sdram, &v6, 1, 2, 0, 0),
        ];
        for (prm, device, h, wc, wd, wb) in cases {
            let report = prm.synth_report(device.family());
            let plan = plan_prr(&report, device).unwrap();
            let o = &plan.organization;
            assert_eq!(
                (o.height, o.clb_cols, o.dsp_cols, o.bram_cols),
                (h, wc, wd, wb),
                "{prm:?} on {}",
                device.name()
            );
        }
    }

    /// FIR on the LX110T: H=4 is feasible but H=5 has the smaller
    /// bitstream; the trace must show both and the plan must pick H=5.
    #[test]
    fn fir_v5_prefers_smaller_bitstream_over_first_feasible() {
        let device = xc5vlx110t();
        let plan = plan_prr(&PaperPrm::Fir.synth_report(Family::Virtex5), &device).unwrap();
        assert_eq!(plan.organization.height, 5);

        let h4 = &plan.trace.candidates[3];
        let h5 = &plan.trace.candidates[4];
        let (b4, b5) = (h4.bitstream_bytes().unwrap(), h5.bitstream_bytes().unwrap());
        assert!(b5 < b4, "H=5 ({b5} B) beats H=4 ({b4} B)");
        assert_eq!(plan.bitstream_bytes, b5);

        // Heights 1-3 fail the Eq. 4 DSP-row constraint.
        for c in &plan.trace.candidates[..3] {
            assert!(matches!(
                c.outcome,
                CandidateOutcome::DspRowsInsufficient { min_height: 4 }
            ));
        }
    }

    #[test]
    fn trace_covers_every_height() {
        let device = xc6vlx75t();
        let plan = plan_prr(&PaperPrm::Mips.synth_report(Family::Virtex6), &device).unwrap();
        assert_eq!(plan.trace.candidates.len(), 3);
        assert_eq!(
            plan.trace
                .candidates
                .iter()
                .map(|c| c.height)
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn family_mismatch_is_rejected() {
        let device = xc6vlx75t();
        let report = PaperPrm::Fir.synth_report(Family::Virtex5);
        assert!(matches!(
            plan_prr(&report, &device),
            Err(CostError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn empty_requirements_are_rejected() {
        let device = xc5vlx110t();
        let req = PrrRequirements::new(Family::Virtex5, 0, 0, 0, 0, 0);
        assert!(matches!(
            plan_prr_from_requirements(&req, &device),
            Err(CostError::EmptyRequirements)
        ));
    }

    #[test]
    fn oversized_prm_yields_no_placement_with_trace() {
        let device = xc5vlx110t();
        // More CLBs than the whole device (8640).
        let req = PrrRequirements::new(Family::Virtex5, 100_000, 0, 0, 0, 0);
        match plan_prr_from_requirements(&req, &device) {
            Err(CostError::NoFeasiblePlacement {
                device: name,
                trace,
            }) => {
                assert_eq!(name, "xc5vlx110t");
                assert_eq!(trace.candidates.len(), 8);
                assert!(trace
                    .candidates
                    .iter()
                    .all(|c| matches!(c.outcome, CandidateOutcome::NoWindow { .. })));
            }
            other => panic!("expected NoFeasiblePlacement, got {other:?}"),
        }
    }

    /// The geometry-cached path must reproduce the direct path exactly,
    /// including when one scratch is reused across plans.
    #[test]
    fn cached_planning_matches_direct_planning() {
        let mut scratch = PlanScratch::default();
        for device in [xc5vlx110t(), xc6vlx75t()] {
            let geo = fabric::DeviceGeometry::new(&device);
            for prm in PaperPrm::ALL {
                let report = prm.synth_report(device.family());
                let direct = plan_prr(&report, &device).unwrap();
                let cached = plan_prr_cached(&report, &device, &geo, &mut scratch).unwrap();
                assert_eq!(direct, cached, "{prm:?} on {}", device.name());
            }
        }
    }

    /// A requirement grid heavy in BRAM/DSP so that many points have no
    /// exact-composition window and exercise the padded fallback.
    fn padding_grid(family: Family) -> Vec<PrrRequirements> {
        let mut reqs = Vec::new();
        for lut_ff in [0u64, 40, 600, 2600] {
            for dsp in [0u64, 3, 9, 30] {
                for bram in [0u64, 2, 6, 20] {
                    let req = PrrRequirements::new(family, lut_ff, lut_ff, lut_ff, dsp, bram);
                    if !req.is_empty() {
                        reqs.push(req);
                    }
                }
            }
        }
        reqs
    }

    /// The DSP/BRAM padding caps must not hide any feasible plan: on every
    /// database device, every grid point either plans identically with
    /// capped and uncapped padding, or fails on both.
    #[test]
    fn padding_caps_lose_no_feasible_plan() {
        let mut scratch = PlanScratch::default();
        let mut padded_points = 0u32;
        for device in fabric::all_devices() {
            let finder = |r: &fabric::WindowRequest| device.find_window(r);
            for req in padding_grid(device.family()) {
                let single_dsp = device.dsp_column_count() == 1;
                for h in 1..=device.rows() {
                    let Ok(org) = PrrOrganization::for_height(&req, h, single_dsp) else {
                        continue;
                    };
                    if finder(&org.window_request()).is_some() {
                        continue; // exact fit: padding never consulted
                    }
                    padded_points += 1;
                    let capped = find_padded_window_with_caps(
                        &org,
                        &device,
                        &finder,
                        &mut scratch,
                        MAX_PAD_DSP_COLS,
                        MAX_PAD_BRAM_COLS,
                    );
                    let uncapped = find_padded_window_with_caps(
                        &org,
                        &device,
                        &finder,
                        &mut scratch,
                        u32::MAX,
                        u32::MAX,
                    );
                    assert_eq!(capped, uncapped, "{org:?} on {}", device.name());
                }
            }
        }
        assert!(padded_points > 100, "grid must exercise the padded path");
    }

    /// The height-factored cached path must agree with the per-height seed
    /// path on requirement points that trigger the padded fallback (the
    /// Table V points all fit exactly, so check the padding grid too).
    #[test]
    fn cached_planning_matches_direct_on_padding_grid() {
        let mut scratch = PlanScratch::default();
        for device in fabric::all_devices() {
            let geo = fabric::DeviceGeometry::new(&device);
            for req in padding_grid(device.family()) {
                let direct = plan_prr_from_requirements(&req, &device);
                let finder = |r: &fabric::WindowRequest| geo.find_window(&device, r);
                scratch.resolutions.clear();
                let mut candidates = Vec::new();
                for h in 1..=device.rows() {
                    candidates.push(evaluate_height_cached(&req, &device, h, &geo, &mut scratch));
                }
                let cached = select_best(&req, &device, candidates);
                match (&direct, &cached) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{req:?} on {}", device.name()),
                    (Err(_), Err(_)) => {}
                    _ => panic!("feasibility disagreement for {req:?} on {}", device.name()),
                }
                // The via-finder baseline (seed loop over the geometry)
                // must agree too.
                let seed_cands: Vec<Candidate> = (1..=device.rows())
                    .map(|h| evaluate_height_with(&req, &device, h, &finder, &mut scratch))
                    .collect();
                let direct_cands = candidates_for(&req, &device);
                assert_eq!(seed_cands, direct_cands, "{req:?} on {}", device.name());
            }
        }
    }

    /// Padded-fallback resolutions are tallied once per distinct
    /// composition, not once per height.
    #[test]
    fn padded_resolutions_are_counted_per_composition() {
        let device = xc5vlx110t();
        let geo = fabric::DeviceGeometry::new(&device);
        let mut scratch = PlanScratch::default();
        // 2 BRAM columns with minimal CLB: no exact window on the LX110T
        // (BRAM columns are isolated), so every height resolves by padding.
        let req = PrrRequirements::new(Family::Virtex5, 8, 8, 8, 0, 40);
        let before = scratch.padded_resolution_count();
        let candidates = candidates_for_cached(&req, &device, &geo, &mut scratch);
        let resolved = scratch.padded_resolution_count() - before;
        assert_eq!(candidates.len(), device.rows() as usize);
        let distinct: std::collections::HashSet<(u32, u32, u32)> = (1..=device.rows())
            .filter_map(|h| PrrOrganization::for_height(&req, h, true).ok())
            .map(|o| (o.clb_cols, o.dsp_cols, o.bram_cols))
            .collect();
        assert!(resolved >= 1);
        assert!(
            resolved <= distinct.len() as u64,
            "padded enumeration must run at most once per composition \
             ({resolved} runs for {} distinct compositions)",
            distinct.len()
        );
    }

    /// The placed window's column mix must match the organization.
    #[test]
    fn window_composition_matches_organization() {
        let device = xc5vlx110t();
        for prm in PaperPrm::ALL {
            let plan = plan_prr(&prm.synth_report(Family::Virtex5), &device).unwrap();
            let counts = plan.window.column_counts();
            assert_eq!(counts.clb(), u64::from(plan.organization.clb_cols));
            assert_eq!(counts.dsp(), u64::from(plan.organization.dsp_cols));
            assert_eq!(counts.bram(), u64::from(plan.organization.bram_cols));
            assert_eq!(plan.window.height, plan.organization.height);
        }
    }
}
