//! Partial bitstream size model (Eqs. 18–23).
//!
//! The paper's second model predicts the byte size of a PRR's partial
//! bitstream from its organization alone, without running bitgen:
//!
//! ```text
//! S_bitstream = (IW + H * (NCW_row + NDW_BRAM) + FW) * Bytes_word    (18)
//! NCW_row  = FAR_FDRI + (NCF_CLB + NCF_DSP + NCF_BRAM + 1) * FR_size (19)
//! NCF_CLB  = W_CLB  * CF_CLB                                         (20)
//! NCF_DSP  = W_DSP  * CF_DSP                                         (21)
//! NCF_BRAM = W_BRAM * CF_BRAM                                        (22)
//! NDW_BRAM = FAR_FDRI + (W_BRAM * DF_BRAM + 1) * FR_size             (23)
//! ```
//!
//! The `+ 1` in (19) and (23) is the pad frame that flushes the device's
//! frame-data pipeline at the end of each FDRI write. `NDW_BRAM` applies
//! only when the PRR contains BRAM columns (Fig. 2: BRAM initialization
//! words are present only for PRRs with BRAMs).
//!
//! The `bitstream` crate generates actual byte streams with this exact
//! structure; a cross-crate property test asserts the model predicts the
//! generator's output length byte-for-byte.

use crate::prr::PrrOrganization;
use serde::{Deserialize, Serialize};

/// Word-level decomposition of a predicted partial bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitstreamBreakdown {
    /// `IW`: initial (sync/header) words.
    pub initial_words: u64,
    /// `NCW_row`: configuration words per PRR row (Eq. 19).
    pub config_words_per_row: u64,
    /// `NDW_BRAM`: BRAM initialization words per PRR row (Eq. 23), zero
    /// when the PRR holds no BRAM columns.
    pub bram_words_per_row: u64,
    /// `H`: PRR rows.
    pub rows: u64,
    /// `FW`: final (CRC/desync) words.
    pub final_words: u64,
    /// `Bytes_word`.
    pub bytes_per_word: u64,
}

impl BitstreamBreakdown {
    /// Total words (Eq. 18's parenthesized term).
    pub fn total_words(&self) -> u64 {
        self.initial_words
            + self.rows * (self.config_words_per_row + self.bram_words_per_row)
            + self.final_words
    }

    /// `S_bitstream` in bytes (Eq. 18).
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * self.bytes_per_word
    }

    /// Configuration frames per PRR row (Eqs. 20–22 summed, plus the pad
    /// frame).
    ///
    /// Saturating: `far_fdri` larger than the row's word count (possible
    /// only with constants from a foreign family) yields 0 frames rather
    /// than an underflow; a zero `fr_size` also yields 0.
    pub fn frames_per_row(&self, fr_size: u64, far_fdri: u64) -> u64 {
        if fr_size == 0 {
            return 0;
        }
        self.config_words_per_row.saturating_sub(far_fdri) / fr_size
    }
}

/// Evaluate Eqs. (19)–(23) for `org`.
pub fn breakdown(org: &PrrOrganization) -> BitstreamBreakdown {
    let g = &org.family.params().frames;
    let fr = u64::from(g.fr_size);
    let far_fdri = u64::from(g.far_fdri);

    let ncf_clb = u64::from(org.clb_cols) * u64::from(g.cf_clb); // (20)
    let ncf_dsp = u64::from(org.dsp_cols) * u64::from(g.cf_dsp); // (21)
    let ncf_bram = u64::from(org.bram_cols) * u64::from(g.cf_bram); // (22)

    let ncw_row = far_fdri + (ncf_clb + ncf_dsp + ncf_bram + 1) * fr; // (19)
    let ndw_bram = if org.bram_cols > 0 {
        far_fdri + (u64::from(org.bram_cols) * u64::from(g.df_bram) + 1) * fr // (23)
    } else {
        0
    };

    BitstreamBreakdown {
        initial_words: u64::from(g.iw),
        config_words_per_row: ncw_row,
        bram_words_per_row: ndw_bram,
        rows: u64::from(org.height),
        final_words: u64::from(g.fw),
        bytes_per_word: u64::from(g.bytes_word),
    }
}

/// `S_bitstream` in bytes (Eq. 18) for `org`.
///
/// ```
/// use prcost::{bitstream_size_bytes, PrrOrganization};
/// use fabric::Family;
///
/// // The paper's FIR PRR on the Virtex-5 LX110T: H=5, 2 CLB + 1 DSP cols.
/// let org = PrrOrganization {
///     family: Family::Virtex5,
///     height: 5,
///     clb_cols: 2,
///     dsp_cols: 1,
///     bram_cols: 0,
/// };
/// assert_eq!(bitstream_size_bytes(&org), 83_040);
/// ```
pub fn bitstream_size_bytes(org: &PrrOrganization) -> u64 {
    breakdown(org).total_bytes()
}

/// Extra command words bracketing a readback (GCAPTURE, FAR, FDRO header,
/// pipelining pad) per PRR row — mirrors `FAR_FDRI` plus the capture
/// command.
pub const READBACK_OVERHEAD_WORDS: u64 = 8;

/// Extra command words for a restore (GRESTORE sequencing) on top of the
/// ordinary partial-write framing.
pub const RESTORE_OVERHEAD_WORDS: u64 = 6;

/// Word-level decomposition of a hardware-task context switch: the
/// readback (save) and write-back (restore) of one PRR's configuration
/// state, per the authors' companion context save/restore machinery
/// (\[5\] FCCM'13, \[6\] ARC'13). Built on the same Eq. 19–23 frame
/// geometry as [`BitstreamBreakdown`]; the `bitstream` crate's
/// `readback` module wraps this with ICAP time pricing. Preemption-aware
/// relocation of a *running* module pays these bytes on top of the plain
/// Eq. 18 bitstream write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextBreakdown {
    /// Words read back on save (whole-PRR capture).
    pub save_words: u64,
    /// Words written on restore (partial write plus `GRESTORE` framing).
    pub restore_words: u64,
    /// Bytes per configuration word.
    pub bytes_per_word: u64,
}

impl ContextBreakdown {
    /// Bytes transferred by a save.
    pub fn save_bytes(&self) -> u64 {
        self.save_words * self.bytes_per_word
    }

    /// Bytes transferred by a restore.
    pub fn restore_bytes(&self) -> u64 {
        self.restore_words * self.bytes_per_word
    }

    /// Save + restore bytes: what relocating a running module pays
    /// through the configuration port on top of the Eq. 18 write.
    pub fn total_bytes(&self) -> u64 {
        self.save_bytes() + self.restore_bytes()
    }
}

/// Context save/restore word counts for a PRR organization.
///
/// Readback returns one pipelining pad frame before the payload (like the
/// write path's pad), so the frame counts match the Eq. 19/23 terms; the
/// command overhead differs (`GCAPTURE`/`FDRO` vs `FAR_FDRI`).
pub fn context_breakdown(org: &PrrOrganization) -> ContextBreakdown {
    let b = breakdown(org);
    let g = &org.family.params().frames;
    let far_fdri = u64::from(g.far_fdri);

    // Frame payload words per row, write-path framing removed.
    let config_payload = b.config_words_per_row - far_fdri;
    let bram_payload = if b.bram_words_per_row > 0 {
        b.bram_words_per_row - far_fdri
    } else {
        0
    };

    let rows = b.rows;
    let save_words = rows * (READBACK_OVERHEAD_WORDS + config_payload + bram_payload)
        + u64::from(g.iw)
        + u64::from(g.fw);
    let restore_words = b.total_words() + rows * RESTORE_OVERHEAD_WORDS;

    ContextBreakdown {
        save_words,
        restore_words,
        bytes_per_word: b.bytes_per_word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;

    fn org(family: Family, h: u32, clb: u32, dsp: u32, bram: u32) -> PrrOrganization {
        PrrOrganization {
            family,
            height: h,
            clb_cols: clb,
            dsp_cols: dsp,
            bram_cols: bram,
        }
    }

    /// Hand-computed Eq. 18 for the paper's FIR/Virtex-5 PRR
    /// (H=5, W_CLB=2, W_DSP=1):
    /// NCW_row = 5 + (72 + 28 + 0 + 1)*41 = 4146;
    /// total = 16 + 5*4146 + 14 = 20760 words = 83 040 bytes.
    #[test]
    fn fir_v5_hand_computed() {
        let o = org(Family::Virtex5, 5, 2, 1, 0);
        let b = breakdown(&o);
        assert_eq!(b.config_words_per_row, 4146);
        assert_eq!(b.bram_words_per_row, 0);
        assert_eq!(b.total_words(), 20760);
        assert_eq!(bitstream_size_bytes(&o), 83_040);
    }

    /// MIPS/Virtex-5 (H=1, W_CLB=17, W_DSP=1, W_BRAM=2):
    /// NCW_row = 5 + (612 + 28 + 60 + 1)*41 = 28 746;
    /// NDW_BRAM = 5 + (2*128 + 1)*41 = 10 542;
    /// total = 16 + 39 288 + 14 = 39 318 words = 157 272 bytes.
    #[test]
    fn mips_v5_hand_computed() {
        let o = org(Family::Virtex5, 1, 17, 1, 2);
        let b = breakdown(&o);
        assert_eq!(b.config_words_per_row, 28_746);
        assert_eq!(b.bram_words_per_row, 10_542);
        assert_eq!(bitstream_size_bytes(&o), 157_272);
    }

    /// Virtex-6 frames are 81 words: SDRAM/V6 (H=1, W_CLB=2):
    /// NCW_row = 5 + (72+1)*81 = 5918; total = 16+5918+14 = 5948 words.
    #[test]
    fn sdram_v6_hand_computed() {
        let o = org(Family::Virtex6, 1, 2, 0, 0);
        assert_eq!(bitstream_size_bytes(&o), 5948 * 4);
    }

    #[test]
    fn bram_init_words_only_with_bram_columns() {
        let without = org(Family::Virtex5, 2, 4, 0, 0);
        let with = org(Family::Virtex5, 2, 4, 0, 1);
        assert_eq!(breakdown(&without).bram_words_per_row, 0);
        let expected = 5 + (128 + 1) * 41;
        assert_eq!(breakdown(&with).bram_words_per_row, expected);
        assert!(bitstream_size_bytes(&with) > bitstream_size_bytes(&without));
    }

    #[test]
    fn size_scales_linearly_in_height() {
        let h1 = bitstream_size_bytes(&org(Family::Virtex5, 1, 3, 0, 0));
        let h2 = bitstream_size_bytes(&org(Family::Virtex5, 2, 3, 0, 0));
        let h3 = bitstream_size_bytes(&org(Family::Virtex5, 3, 3, 0, 0));
        assert_eq!(h3 - h2, h2 - h1, "per-row cost is constant");
    }

    #[test]
    fn frames_per_row_recovers_frame_count() {
        let o = org(Family::Virtex5, 1, 2, 1, 1);
        let b = breakdown(&o);
        // 2*36 + 28 + 30 + 1 pad = 131 frames.
        assert_eq!(b.frames_per_row(41, 5), 131);
    }

    /// Mismatched constants must saturate, not underflow (regression:
    /// `config_words_per_row - far_fdri` panicked in debug builds when
    /// `far_fdri` exceeded the row words).
    #[test]
    fn frames_per_row_saturates_on_oversized_far_fdri() {
        let b = breakdown(&org(Family::Virtex5, 1, 1, 0, 0));
        assert_eq!(b.frames_per_row(41, b.config_words_per_row + 1), 0);
        assert_eq!(b.frames_per_row(0, 5), 0);
    }

    /// Context bytes are strictly positive for any non-empty PRR, so a
    /// preemption-aware move (write + save + restore) always costs more
    /// bytes than the plain Eq. 18 write.
    #[test]
    fn context_switch_always_adds_bytes() {
        for (h, clb, dsp, bram) in [(1, 1, 0, 0), (2, 4, 1, 0), (3, 6, 1, 2)] {
            let o = org(Family::Virtex5, h, clb, dsp, bram);
            let ctx = context_breakdown(&o);
            assert!(ctx.save_bytes() > 0);
            assert!(ctx.restore_bytes() > bitstream_size_bytes(&o));
            assert_eq!(ctx.total_bytes(), ctx.save_bytes() + ctx.restore_bytes());
        }
    }

    #[test]
    fn family_portability_changes_only_constants() {
        // Same organization on Virtex-5 vs Virtex-6 differs because
        // FR_size (41 vs 81) and CF_BRAM (30 vs 28) differ.
        let v5 = bitstream_size_bytes(&org(Family::Virtex5, 1, 4, 1, 1));
        let v6 = bitstream_size_bytes(&org(Family::Virtex6, 1, 4, 1, 1));
        assert!(v6 > v5, "81-word Virtex-6 frames dominate");
    }
}
