//! PRR organization (Eqs. 2–12) and resource utilization (Eqs. 13–17).

use crate::requirements::PrrRequirements;
use fabric::{Family, Resources, WindowRequest};
use serde::{Deserialize, Serialize};

/// The organization of one PRR: its height and per-kind column counts.
///
/// Produced by [`PrrOrganization::for_height`], which applies the paper's
/// Eqs. (2)–(6) — including the Eq. (4) special case for devices with a
/// single DSP column, where `W_DSP` is fixed at 1 and the DSP requirement
/// constrains the height instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrrOrganization {
    /// Family the organization is computed for.
    pub family: Family,
    /// `H`: rows in the PRR (rectangular: `H_CLB = H_DSP = H_BRAM = H`).
    pub height: u32,
    /// `W_CLB`: CLB columns (Eq. 2).
    pub clb_cols: u32,
    /// `W_DSP`: DSP columns (Eq. 3, or 1 under the Eq. 4 special case).
    pub dsp_cols: u32,
    /// `W_BRAM`: BRAM columns (Eq. 5).
    pub bram_cols: u32,
}

/// Why a height is infeasible for a requirement set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrganizationError {
    /// The PRM needs no resources: a PRR of zero width is meaningless.
    EmptyRequirements,
    /// Eq. (4) case: the device has one DSP column, so `W_DSP = 1`, and
    /// `H * DSP_col` rows provide too few DSPs at this height.
    SingleDspColumnNeedsRows {
        /// Minimum height that satisfies `DSP_req` (`H_DSP` of Eq. 4).
        min_height: u32,
    },
}

impl PrrOrganization {
    /// Apply Eqs. (2)–(6) for requirements `req` at height `h`.
    ///
    /// `single_dsp_column` selects the Eq. (4) special case ("some Xilinx
    /// devices include only one DSP column in the fabric, which sets
    /// `W_DSP = 1`").
    pub fn for_height(
        req: &PrrRequirements,
        h: u32,
        single_dsp_column: bool,
    ) -> Result<PrrOrganization, OrganizationError> {
        assert!(h >= 1, "PRR height is at least one row");
        if req.is_empty() {
            return Err(OrganizationError::EmptyRequirements);
        }
        let p = req.family.params();
        let hh = u64::from(h);

        // Eq. (2).
        let clb_cols = req.clb_req.div_ceil(hh * u64::from(p.clb_col)) as u32;

        // Eq. (3) or Eq. (4).
        let dsp_cols = if req.dsp_req == 0 {
            0
        } else if single_dsp_column {
            // Eq. (4): W_DSP = 1; H_DSP = ceil(DSP_req / DSP_col) rows are
            // needed, so heights below H_DSP are infeasible.
            let min_height = req.dsp_req.div_ceil(u64::from(p.dsp_col)) as u32;
            if h < min_height {
                return Err(OrganizationError::SingleDspColumnNeedsRows { min_height });
            }
            1
        } else {
            req.dsp_req.div_ceil(hh * u64::from(p.dsp_col)) as u32
        };

        // Eq. (5).
        let bram_cols = req.bram_req.div_ceil(hh * u64::from(p.bram_col)) as u32;

        Ok(PrrOrganization {
            family: req.family,
            height: h,
            clb_cols,
            dsp_cols,
            bram_cols,
        })
    }

    /// `W = W_CLB + W_DSP + W_BRAM` (Eq. 6).
    pub fn width(&self) -> u32 {
        self.clb_cols + self.dsp_cols + self.bram_cols
    }

    /// `PRR_size = H x W` (Eq. 7).
    pub fn prr_size(&self) -> u64 {
        u64::from(self.height) * u64::from(self.width())
    }

    /// Available resources (Eqs. 8, 11, 12).
    pub fn available(&self) -> Resources {
        let p = self.family.params();
        let h = u64::from(self.height);
        Resources::new(
            h * u64::from(self.clb_cols) * u64::from(p.clb_col),
            h * u64::from(self.dsp_cols) * u64::from(p.dsp_col),
            h * u64::from(self.bram_cols) * u64::from(p.bram_col),
        )
    }

    /// `FF_avail = CLB_avail * FF_CLB` (Eq. 9).
    pub fn ff_avail(&self) -> u64 {
        self.available().clb() * u64::from(self.family.params().ff_clb)
    }

    /// `LUT_avail = CLB_avail * LUT_CLB` (Eq. 10).
    pub fn lut_avail(&self) -> u64 {
        self.available().clb() * u64::from(self.family.params().lut_clb)
    }

    /// Resource utilization (Eqs. 13–17) of `req` inside this PRR.
    pub fn utilization(&self, req: &PrrRequirements) -> Utilization {
        let avail = self.available();
        Utilization {
            clb: ratio(req.clb_req, avail.clb()),
            ff: ratio(req.ff_req, self.ff_avail()),
            lut: ratio(req.lut_req, self.lut_avail()),
            dsp: ratio(req.dsp_req, avail.dsp()),
            bram: ratio(req.bram_req, avail.bram()),
        }
    }

    /// The fabric window this organization must occupy.
    pub fn window_request(&self) -> WindowRequest {
        WindowRequest::new(self.clb_cols, self.dsp_cols, self.bram_cols, self.height)
    }

    /// Whether the PRR's available resources cover `req` (sanity check:
    /// true by construction for organizations from [`Self::for_height`]).
    pub fn covers(&self, req: &PrrRequirements) -> bool {
        let avail = self.available();
        avail.clb() >= req.clb_req && avail.dsp() >= req.dsp_req && avail.bram() >= req.bram_req
    }
}

fn ratio(used: u64, avail: u64) -> f64 {
    if avail == 0 {
        0.0
    } else {
        used as f64 / avail as f64 * 100.0
    }
}

/// Per-resource utilization percentages (Eqs. 13–17). High utilization
/// means low internal fragmentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// `RU_CLB` (Eq. 13), percent.
    pub clb: f64,
    /// `RU_FF` (Eq. 14), percent.
    pub ff: f64,
    /// `RU_LUT` (Eq. 15), percent.
    pub lut: f64,
    /// `RU_DSP` (Eq. 16), percent.
    pub dsp: f64,
    /// `RU_BRAM` (Eq. 17), percent.
    pub bram: f64,
}

impl Utilization {
    /// All five percentages, for iteration/rendering.
    pub fn as_array(&self) -> [f64; 5] {
        [self.clb, self.ff, self.lut, self.dsp, self.bram]
    }

    /// Round each percentage to the nearest integer (the paper's Table V
    /// presentation).
    pub fn rounded(&self) -> [i64; 5] {
        self.as_array().map(|v| v.round() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::PaperPrm;

    fn req(prm: PaperPrm, fam: Family) -> PrrRequirements {
        PrrRequirements::from_report(&prm.synth_report(fam))
    }

    #[test]
    fn eq2_to_6_fir_v5_at_h5() {
        let r = req(PaperPrm::Fir, Family::Virtex5);
        let org = PrrOrganization::for_height(&r, 5, true).unwrap();
        assert_eq!(org.clb_cols, 2);
        assert_eq!(org.dsp_cols, 1);
        assert_eq!(org.bram_cols, 0);
        assert_eq!(org.width(), 3);
        assert_eq!(org.prr_size(), 15);
        let avail = org.available();
        assert_eq!(avail.clb(), 200);
        assert_eq!(avail.dsp(), 40);
        assert_eq!(org.ff_avail(), 1600);
        assert_eq!(org.lut_avail(), 1600);
    }

    #[test]
    fn eq4_single_dsp_column_height_constraint() {
        let r = req(PaperPrm::Fir, Family::Virtex5); // DSP_req = 32
        for h in 1..4 {
            assert_eq!(
                PrrOrganization::for_height(&r, h, true),
                Err(OrganizationError::SingleDspColumnNeedsRows { min_height: 4 }),
                "H={h} provides only {} DSPs",
                h * 8
            );
        }
        assert!(PrrOrganization::for_height(&r, 4, true).is_ok());
    }

    #[test]
    fn eq3_multi_dsp_column() {
        let r = req(PaperPrm::Fir, Family::Virtex6); // DSP_req = 27
        let org = PrrOrganization::for_height(&r, 1, false).unwrap();
        assert_eq!(org.dsp_cols, 2, "ceil(27 / (1*16)) = 2");
        let org3 = PrrOrganization::for_height(&r, 3, false).unwrap();
        assert_eq!(org3.dsp_cols, 1, "ceil(27 / (3*16)) = 1");
    }

    /// Table V utilization rows (surviving cells of the paper) for all six
    /// PRM/device pairs, at the paper's chosen heights.
    #[test]
    fn table5_utilizations_reproduce() {
        // (prm, family, H, single_dsp, [RU_CLB, RU_FF, RU_LUT, RU_DSP, RU_BRAM])
        //
        // MIPS/Virtex-5 RU_CLB: the model computes 328/340 = 96.47 %,
        // which rounds to 96; the paper prints 97 % (its own rounding of
        // the same ratio). Every other cell matches the paper exactly.
        let cases = [
            (PaperPrm::Fir, Family::Virtex5, 5, true, [82, 25, 72, 80, 0]),
            (
                PaperPrm::Mips,
                Family::Virtex5,
                1,
                true,
                [96, 59, 56, 50, 75],
            ),
            (
                PaperPrm::Sdram,
                Family::Virtex5,
                1,
                true,
                [70, 61, 33, 0, 0],
            ),
            (
                PaperPrm::Fir,
                Family::Virtex6,
                1,
                false,
                [92, 12, 82, 84, 0],
            ),
            (
                PaperPrm::Mips,
                Family::Virtex6,
                1,
                false,
                [92, 26, 60, 25, 75],
            ),
            (
                PaperPrm::Sdram,
                Family::Virtex6,
                1,
                false,
                [61, 25, 28, 0, 0],
            ),
        ];
        for (prm, fam, h, single, expected) in cases {
            let r = req(prm, fam);
            let org = PrrOrganization::for_height(&r, h, single).unwrap();
            let ru = org.utilization(&r).rounded();
            assert_eq!(ru, expected.map(i64::from), "{prm:?}/{fam}");
        }
    }

    #[test]
    fn organizations_always_cover_requirements() {
        for prm in PaperPrm::ALL {
            for fam in [Family::Virtex5, Family::Virtex6] {
                let r = req(prm, fam);
                for h in 1..=8 {
                    if let Ok(org) = PrrOrganization::for_height(&r, h, fam == Family::Virtex5) {
                        assert!(org.covers(&r), "{prm:?}/{fam} H={h}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_requirements_are_rejected() {
        let r = PrrRequirements::new(Family::Virtex5, 0, 0, 0, 0, 0);
        assert_eq!(
            PrrOrganization::for_height(&r, 1, false),
            Err(OrganizationError::EmptyRequirements)
        );
    }

    #[test]
    fn utilization_handles_zero_available() {
        let r = req(PaperPrm::Sdram, Family::Virtex5); // no DSP/BRAM
        let org = PrrOrganization::for_height(&r, 1, true).unwrap();
        let ru = org.utilization(&r);
        assert_eq!(ru.dsp, 0.0);
        assert_eq!(ru.bram, 0.0);
    }
}
