//! Human-readable plan datasheets (Table-V-style rendering).

use crate::search::PrrPlan;
use std::fmt::Write as _;

/// Render a single-PRM Table-V-style datasheet for `plan`.
///
/// All the quantities the paper tabulates for one PRM/device pair:
/// requirements, organization, availability, utilization and the predicted
/// bitstream.
pub fn datasheet(plan: &PrrPlan) -> String {
    let req = &plan.requirements;
    let org = &plan.organization;
    let avail = org.available();
    let ru = plan.utilization.rounded();
    let mut out = String::with_capacity(640);
    let mut row = |k: &str, v: String| {
        let _ = writeln!(out, "{k:>12}  {v}");
    };
    row("family", org.family.name().to_string());
    row("LUT_FF_req", req.lut_ff_req.to_string());
    row("LUT_req", req.lut_req.to_string());
    row("FF_req", req.ff_req.to_string());
    row("DSP_req", req.dsp_req.to_string());
    row("BRAM_req", req.bram_req.to_string());
    row("CLB_req", format!("{}  (Eq. 1)", req.clb_req));
    row("H", org.height.to_string());
    row(
        "W",
        format!(
            "{} = {} CLB + {} DSP + {} BRAM  (Eq. 6)",
            org.width(),
            org.clb_cols,
            org.dsp_cols,
            org.bram_cols
        ),
    );
    row("PRR_size", format!("{}  (Eq. 7)", org.prr_size()));
    row(
        "avail",
        format!(
            "{} CLB / {} FF / {} LUT / {} DSP / {} BRAM",
            avail.clb(),
            org.ff_avail(),
            org.lut_avail(),
            avail.dsp(),
            avail.bram()
        ),
    );
    row(
        "RU",
        format!(
            "CLB {}%  FF {}%  LUT {}%  DSP {}%  BRAM {}%  (Eqs. 13-17)",
            ru[0], ru[1], ru[2], ru[3], ru[4]
        ),
    );
    row(
        "placement",
        format!(
            "columns {}..{}, rows {}..{}",
            plan.window.start_col,
            plan.window.end_col() - 1,
            plan.window.row,
            plan.window.top_row()
        ),
    );
    row(
        "S_bitstream",
        format!("{} bytes  (Eq. 18)", plan.bitstream_bytes),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::plan_prr;
    use fabric::database::xc5vlx110t;
    use synth::PaperPrm;

    #[test]
    fn datasheet_contains_all_table5_quantities() {
        let device = xc5vlx110t();
        let plan = plan_prr(&PaperPrm::Fir.synth_report(device.family()), &device).unwrap();
        let sheet = datasheet(&plan);
        for needle in [
            "LUT_FF_req  1300",
            "CLB_req  163",
            "H  5",
            "2 CLB + 1 DSP + 0 BRAM",
            "PRR_size  15",
            "200 CLB / 1600 FF / 1600 LUT / 40 DSP / 0 BRAM",
            "CLB 82%",
            "S_bitstream  83040 bytes",
        ] {
            assert!(sheet.contains(needle), "missing {needle:?} in:\n{sheet}");
        }
    }
}
