//! Asynchronous planning service over the sharded [`Engine`].
//!
//! Hardware-multitasking schedulers don't plan in batch: tasks arrive
//! online, from several tenants, and the scheduler wants each PRR plan
//! without stalling its own loop. [`PlanService`] wraps one shared
//! [`Engine`] behind a submit/await front-end:
//!
//! * **Bounded admission queue with backpressure** — [`PlanService::submit`]
//!   enqueues a request and returns a [`PlanTicket`] immediately; when the
//!   queue is at capacity it blocks until a worker drains space (and
//!   [`PlanService::try_submit`] refuses instead, for callers that would
//!   rather shed load than wait).
//! * **Batched admission** — each worker drains up to
//!   [`ServiceConfig::batch_size`] jobs per queue-lock acquisition, so the
//!   queue lock is touched once per batch rather than once per job, and
//!   per-tenant metrics are flushed once per batch rather than once per
//!   plan.
//! * **Tickets, sync or async** — a [`PlanTicket`] is both a blocking
//!   handle ([`PlanTicket::wait`]) and a [`Future`], so the service drops
//!   into an async executor unchanged; no runtime is required (or used)
//!   here. Results are the engine's memoized
//!   `Arc<Result<PrrPlan, CostError>>` — byte-identical to calling
//!   [`plan_prr`](crate::plan_prr) directly, allocation-free on memo hits.
//! * **Per-tenant labeled metrics** — every completed plan is tallied
//!   under `tenant:<name>` in the engine's registry, alongside
//!   service-level counters (`service:submitted`, `service:completed`,
//!   `service:batches`) and a `"service"` latency stage whose snapshot
//!   carries submit→completion p50/p90/p99.
//!
//! Shutdown is graceful: [`PlanService::shutdown`] (or drop) stops
//! admission, lets the workers drain every queued job, and joins them —
//! no ticket is ever abandoned unresolved.

use crate::engine::Engine;
use crate::error::CostError;
use crate::requirements::PrrRequirements;
use crate::search::{PlanScratch, PrrPlan};
use crate::shard::DeviceEntry;
use fabric::Device;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of a [`PlanService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (min 1).
    pub workers: usize,
    /// Admission-queue capacity; full ⇒ `submit` blocks, `try_submit`
    /// refuses (min 1).
    pub queue_capacity: usize,
    /// Maximum jobs one worker claims per queue-lock acquisition (min 1).
    pub batch_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 1024,
            batch_size: 32,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The service has been shut down; no further admissions.
    Closed,
    /// The queue is at capacity (only from [`PlanService::try_submit`]).
    QueueFull,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "planning service is shut down"),
            SubmitError::QueueFull => write!(f, "planning queue is at capacity"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A planning result shared out of the engine's memo.
pub type PlanResult = Arc<Result<PrrPlan, CostError>>;

/// Pending / resolved state shared between a ticket and the worker that
/// completes it.
#[derive(Debug, Default)]
struct TicketState {
    result: Option<PlanResult>,
    waker: Option<Waker>,
}

#[derive(Debug, Default)]
struct TicketShared {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketShared {
    fn complete(&self, result: PlanResult) {
        let waker = {
            let mut state = self.state.lock().expect("ticket lock poisoned");
            state.result = Some(result);
            state.waker.take()
        };
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Handle to one submitted plan request: block on it with
/// [`PlanTicket::wait`], poll it ([`PlanTicket::try_result`]), or `.await`
/// it — the ticket is a [`Future`] resolving to the shared [`PlanResult`].
#[derive(Debug)]
pub struct PlanTicket {
    shared: Arc<TicketShared>,
}

impl PlanTicket {
    /// Block until the plan completes.
    pub fn wait(&self) -> PlanResult {
        let mut state = self.shared.state.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = &state.result {
                return Arc::clone(result);
            }
            state = self.shared.done.wait(state).expect("ticket lock poisoned");
        }
    }

    /// The result if already available (never blocks).
    pub fn try_result(&self) -> Option<PlanResult> {
        self.shared
            .state
            .lock()
            .expect("ticket lock poisoned")
            .result
            .clone()
    }
}

impl Future for PlanTicket {
    type Output = PlanResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock().expect("ticket lock poisoned");
        if let Some(result) = &state.result {
            Poll::Ready(Arc::clone(result))
        } else {
            // Latest-poll-wins: a ticket lives in one task at a time.
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// One queued planning job. The device is resolved to its interned entry
/// at submission, so workers never re-hash layouts under the queue lock.
#[derive(Debug)]
struct Job {
    tenant: Arc<str>,
    requirements: PrrRequirements,
    entry: Arc<DeviceEntry>,
    submitted: Instant,
    ticket: Arc<TicketShared>,
}

#[derive(Debug, Default)]
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

#[derive(Debug)]
struct ServiceInner {
    engine: Arc<Engine>,
    config: ServiceConfig,
    queue: Mutex<Queue>,
    /// Signals workers: jobs available (or shutdown).
    jobs_ready: Condvar,
    /// Signals blocked submitters: queue has space (or shutdown).
    space_ready: Condvar,
}

/// The asynchronous planning service (see the module docs).
#[derive(Debug)]
pub struct PlanService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl PlanService {
    /// Start a service on a fresh engine.
    pub fn new(config: ServiceConfig) -> Self {
        PlanService::with_engine(Arc::new(Engine::new()), config)
    }

    /// Start a service over an existing engine — e.g. one restored via
    /// [`Engine::import_state`], so a warm memo survives process restarts.
    pub fn with_engine(engine: Arc<Engine>, config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            batch_size: config.batch_size.max(1),
        };
        let inner = Arc::new(ServiceInner {
            engine,
            config,
            queue: Mutex::new(Queue::default()),
            jobs_ready: Condvar::new(),
            space_ready: Condvar::new(),
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("plan-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn plan worker")
            })
            .collect();
        PlanService { inner, workers }
    }

    /// The shared engine (memo state, metrics, snapshot export).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Submit a plan request for `tenant`, blocking while the queue is at
    /// capacity (bounded-queue backpressure). Returns the ticket, or
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit(
        &self,
        tenant: &str,
        requirements: PrrRequirements,
        device: &Device,
    ) -> Result<PlanTicket, SubmitError> {
        self.admit(tenant, requirements, device, true)
    }

    /// [`PlanService::submit`] that refuses with [`SubmitError::QueueFull`]
    /// instead of blocking when the queue is at capacity.
    pub fn try_submit(
        &self,
        tenant: &str,
        requirements: PrrRequirements,
        device: &Device,
    ) -> Result<PlanTicket, SubmitError> {
        self.admit(tenant, requirements, device, false)
    }

    fn admit(
        &self,
        tenant: &str,
        requirements: PrrRequirements,
        device: &Device,
        block: bool,
    ) -> Result<PlanTicket, SubmitError> {
        // Intern outside the queue lock: warm devices cost a hash + read
        // lock here and nothing in the workers.
        let (_, entry) = self.inner.engine.intern_device(device);
        let job = Job {
            tenant: Arc::from(tenant),
            requirements,
            entry,
            submitted: Instant::now(),
            ticket: Arc::new(TicketShared::default()),
        };
        let ticket = PlanTicket {
            shared: Arc::clone(&job.ticket),
        };
        let mut queue = self.inner.queue.lock().expect("service queue poisoned");
        loop {
            if queue.closed {
                return Err(SubmitError::Closed);
            }
            if queue.jobs.len() < self.inner.config.queue_capacity {
                break;
            }
            if !block {
                return Err(SubmitError::QueueFull);
            }
            queue = self
                .inner
                .space_ready
                .wait(queue)
                .expect("service queue poisoned");
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.inner
            .engine
            .metrics()
            .incr_labeled("service:submitted");
        self.inner.jobs_ready.notify_one();
        Ok(ticket)
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len()
    }

    /// Stop admission, drain every queued job, and join the workers.
    /// Every ticket issued before shutdown resolves; later submissions
    /// are refused with [`SubmitError::Closed`]. Idempotent, and also run
    /// on drop.
    pub fn shutdown(&mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("service queue poisoned");
            queue.closed = true;
        }
        self.inner.jobs_ready.notify_all();
        self.inner.space_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Worker: claim up to `batch_size` jobs per lock acquisition, plan them
/// against the shared engine, resolve tickets, and flush per-tenant
/// counters once per batch.
fn worker_loop(inner: &ServiceInner) {
    let mut scratch = PlanScratch::default();
    let mut batch: Vec<Job> = Vec::with_capacity(inner.config.batch_size);
    let mut tenant_counts: BTreeMap<Arc<str>, u64> = BTreeMap::new();
    loop {
        {
            let mut queue = inner.queue.lock().expect("service queue poisoned");
            loop {
                if !queue.jobs.is_empty() {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = inner
                    .jobs_ready
                    .wait(queue)
                    .expect("service queue poisoned");
            }
            let take = queue.jobs.len().min(inner.config.batch_size);
            batch.extend(queue.jobs.drain(..take));
        }
        // Freed `take` slots: wake every blocked submitter (they re-check
        // capacity themselves) and, if jobs remain, another worker.
        inner.space_ready.notify_all();
        inner.jobs_ready.notify_one();

        let metrics = inner.engine.metrics();
        for job in batch.drain(..) {
            let result =
                inner
                    .engine
                    .plan_requirements(&job.requirements, &job.entry.device, &mut scratch);
            metrics.record_stage("service", job.submitted.elapsed());
            *tenant_counts.entry(Arc::clone(&job.tenant)).or_insert(0) += 1;
            job.ticket.complete(result);
        }
        let completed: u64 = tenant_counts.values().sum();
        for (tenant, count) in &tenant_counts {
            metrics.add_labeled(&format!("tenant:{tenant}"), *count);
        }
        tenant_counts.clear();
        metrics.add_labeled("service:completed", completed);
        metrics.incr_labeled("service:batches");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::plan_prr_from_requirements;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use std::task::Wake;

    fn reqs(family: Family, n: u64) -> PrrRequirements {
        PrrRequirements::new(family, 40 * n + 8, 30 * n, 30 * n, n % 5, n % 3)
    }

    #[test]
    fn service_results_match_direct_planning() {
        let mut service = PlanService::new(ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            batch_size: 8,
        });
        let v5 = xc5vlx110t();
        let tickets: Vec<(PrrRequirements, PlanTicket)> = (0..40)
            .map(|n| {
                let r = reqs(Family::Virtex5, n);
                let t = service.submit("alice", r, &v5).unwrap();
                (r, t)
            })
            .collect();
        for (r, ticket) in tickets {
            let via_service = ticket.wait();
            let direct = plan_prr_from_requirements(&r, &v5);
            assert_eq!(*via_service, direct, "{r:?}");
        }
        let snap = service.engine().snapshot();
        assert_eq!(snap.labeled_value("tenant:alice"), 40);
        assert_eq!(snap.labeled_value("service:submitted"), 40);
        assert_eq!(snap.labeled_value("service:completed"), 40);
        assert!(snap
            .stages
            .iter()
            .any(|s| s.name == "service" && s.count == 40));
        service.shutdown();
    }

    #[test]
    fn tenants_are_tallied_separately() {
        let service = PlanService::new(ServiceConfig::default());
        let v6 = xc6vlx75t();
        let mut tickets = Vec::new();
        for n in 0..6 {
            tickets.push(
                service
                    .submit("alice", reqs(Family::Virtex6, n), &v6)
                    .unwrap(),
            );
        }
        for n in 0..3 {
            tickets.push(
                service
                    .submit("bob", reqs(Family::Virtex6, n), &v6)
                    .unwrap(),
            );
        }
        for t in tickets {
            t.wait();
        }
        let snap = service.engine().snapshot();
        assert_eq!(snap.labeled_value("tenant:alice"), 6);
        assert_eq!(snap.labeled_value("tenant:bob"), 3);
        // Bob's three points repeat Alice's: served from the shared memo.
        assert_eq!(snap.counters.plan_cache_hits, 3);
        assert_eq!(snap.counters.plan_builds, 6);
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // One worker, tiny queue: stuff it faster than it drains.
        let mut service = PlanService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            batch_size: 1,
        });
        let v5 = xc5vlx110t();
        let mut admitted = Vec::new();
        let mut refused = 0u32;
        for n in 0..200 {
            match service.try_submit("t", reqs(Family::Virtex5, n % 7), &v5) {
                Ok(t) => admitted.push(t),
                Err(SubmitError::QueueFull) => refused += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        for t in &admitted {
            t.wait();
        }
        // Everything admitted completed; the rest was refused, not lost.
        assert_eq!(
            service
                .engine()
                .snapshot()
                .labeled_value("service:completed"),
            admitted.len() as u64
        );
        // With a 2-deep queue and 200 rapid submissions, some must have
        // been refused (the blocking path is covered by the stress suite).
        assert!(refused > 0, "queue never filled");
        service.shutdown();
    }

    #[test]
    fn shutdown_resolves_all_pending_tickets_and_closes_admission() {
        let mut service = PlanService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            batch_size: 4,
        });
        let v5 = xc5vlx110t();
        let tickets: Vec<PlanTicket> = (0..64)
            .map(|n| service.submit("t", reqs(Family::Virtex5, n), &v5).unwrap())
            .collect();
        let engine = Arc::clone(service.engine());
        service.shutdown();
        for t in &tickets {
            assert!(t.try_result().is_some(), "shutdown drained every job");
        }
        assert_eq!(engine.snapshot().labeled_value("service:completed"), 64);
    }

    struct Unparker(std::thread::Thread);

    impl Wake for Unparker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Minimal park-based executor: enough to prove the ticket is a real
    /// `Future` that wakes its task on completion. `Unpin` keeps this
    /// inside the crate's `forbid(unsafe_code)` (tickets are trivially
    /// `Unpin`: their only field is an `Arc`).
    fn block_on<F: Future + Unpin>(mut future: F) -> F::Output {
        let waker = Waker::from(Arc::new(Unparker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match Pin::new(&mut future).poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    #[test]
    fn tickets_are_awaitable_futures() {
        let mut service = PlanService::new(ServiceConfig::default());
        let v5 = xc5vlx110t();
        let r = reqs(Family::Virtex5, 3);
        let ticket = service.submit("async", r, &v5).unwrap();
        let via_await = block_on(ticket);
        assert_eq!(*via_await, plan_prr_from_requirements(&r, &v5));
        service.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let mut service = PlanService::new(ServiceConfig::default());
        let v5 = xc5vlx110t();
        service.submit("t", reqs(Family::Virtex5, 1), &v5).unwrap();
        service.shutdown();
        assert!(matches!(
            service.submit("t", reqs(Family::Virtex5, 2), &v5),
            Err(SubmitError::Closed)
        ));
        assert!(matches!(
            service.try_submit("t", reqs(Family::Virtex5, 2), &v5),
            Err(SubmitError::Closed)
        ));
    }
}
