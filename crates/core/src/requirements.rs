//! PRM resource requirements: the Table I `*_req` parameters plus Eq. (1).

use fabric::Family;
use serde::{Deserialize, Serialize};
use synth::SynthReport;

/// The cost-model inputs for one PRM, extracted from a synthesis report.
///
/// `clb_req` is derived via the paper's Eq. (1):
/// `CLB_req = ceil(LUT_FF_req / LUT_CLB)` — the ceiling guarantees
/// sufficient CLB resources when the division is non-integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrrRequirements {
    /// Family the requirements were synthesized for.
    pub family: Family,
    /// `LUT_FF_req`: LUT–FF pair slots.
    pub lut_ff_req: u64,
    /// `LUT_req`: slice LUTs.
    pub lut_req: u64,
    /// `FF_req`: slice registers.
    pub ff_req: u64,
    /// `DSP_req`: DSP blocks.
    pub dsp_req: u64,
    /// `BRAM_req`: block RAMs.
    pub bram_req: u64,
    /// `CLB_req`: CLBs, from Eq. (1).
    pub clb_req: u64,
}

impl PrrRequirements {
    /// Extract requirements from a synthesis report (applies Eq. 1).
    pub fn from_report(report: &SynthReport) -> Self {
        let lut_clb = u64::from(report.family.params().lut_clb);
        PrrRequirements {
            family: report.family,
            lut_ff_req: report.lut_ff_pairs,
            lut_req: report.luts,
            ff_req: report.ffs,
            dsp_req: report.dsps,
            bram_req: report.brams,
            clb_req: report.lut_ff_pairs.div_ceil(lut_clb),
        }
    }

    /// Build requirements directly (e.g. from a parsed report file).
    pub fn new(
        family: Family,
        lut_ff_req: u64,
        lut_req: u64,
        ff_req: u64,
        dsp_req: u64,
        bram_req: u64,
    ) -> Self {
        let lut_clb = u64::from(family.params().lut_clb);
        PrrRequirements {
            family,
            lut_ff_req,
            lut_req,
            ff_req,
            dsp_req,
            bram_req,
            clb_req: lut_ff_req.div_ceil(lut_clb),
        }
    }

    /// True when the PRM needs no fabric resources at all.
    pub fn is_empty(&self) -> bool {
        self.clb_req == 0 && self.dsp_req == 0 && self.bram_req == 0
    }

    /// Component-wise maximum of requirements; used when several PRMs share
    /// one PRR (each kind sized by its worst-case PRM).
    pub fn max(&self, other: &PrrRequirements) -> PrrRequirements {
        debug_assert_eq!(self.family, other.family);
        PrrRequirements {
            family: self.family,
            lut_ff_req: self.lut_ff_req.max(other.lut_ff_req),
            lut_req: self.lut_req.max(other.lut_req),
            ff_req: self.ff_req.max(other.ff_req),
            dsp_req: self.dsp_req.max(other.dsp_req),
            bram_req: self.bram_req.max(other.bram_req),
            clb_req: self.clb_req.max(other.clb_req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::PaperPrm;

    /// Eq. (1) against the paper's reconstructed Table V CLB_req row.
    #[test]
    fn eq1_clb_req_matches_table5() {
        let cases = [
            (PaperPrm::Fir, Family::Virtex5, 163u64),
            (PaperPrm::Mips, Family::Virtex5, 328),
            (PaperPrm::Sdram, Family::Virtex5, 42),
            (PaperPrm::Fir, Family::Virtex6, 184),
            (PaperPrm::Mips, Family::Virtex6, 405),
            (PaperPrm::Sdram, Family::Virtex6, 49),
        ];
        for (prm, fam, clb) in cases {
            let req = PrrRequirements::from_report(&prm.synth_report(fam));
            assert_eq!(req.clb_req, clb, "{prm:?}/{fam}");
        }
    }

    #[test]
    fn ceiling_behaviour_of_eq1() {
        // 8 LUT_FF pairs on Virtex-5 (8 per CLB) = exactly 1 CLB;
        // 9 pairs must round up to 2.
        assert_eq!(
            PrrRequirements::new(Family::Virtex5, 8, 0, 0, 0, 0).clb_req,
            1
        );
        assert_eq!(
            PrrRequirements::new(Family::Virtex5, 9, 0, 0, 0, 0).clb_req,
            2
        );
        assert_eq!(
            PrrRequirements::new(Family::Virtex5, 0, 0, 0, 0, 0).clb_req,
            0
        );
    }

    #[test]
    fn emptiness() {
        assert!(PrrRequirements::new(Family::Virtex5, 0, 0, 0, 0, 0).is_empty());
        assert!(!PrrRequirements::new(Family::Virtex5, 0, 0, 0, 1, 0).is_empty());
    }

    #[test]
    fn max_is_componentwise() {
        let a = PrrRequirements::new(Family::Virtex5, 100, 90, 40, 8, 0);
        let b = PrrRequirements::new(Family::Virtex5, 50, 95, 60, 2, 3);
        let m = a.max(&b);
        assert_eq!(m.lut_ff_req, 100);
        assert_eq!(m.lut_req, 95);
        assert_eq!(m.ff_req, 60);
        assert_eq!(m.dsp_req, 8);
        assert_eq!(m.bram_req, 3);
        assert_eq!(m.clb_req, 13); // ceil(100/8)
    }
}
