//! # `prcost` — the paper's cost models
//!
//! Implementation of the two high-level cost models of Morales-Villanueva &
//! Gordon-Ross, *"Partial Region and Bitstream Cost Models for Hardware
//! Multitasking on Partially Reconfigurable FPGAs"* (IPPS 2015):
//!
//! 1. **PRR size/organization model** (§III.B, Eqs. 1–17): from a PRM's
//!    synthesis-report resource requirements, derive the partially
//!    reconfigurable region's height `H`, per-kind column counts
//!    (`W_CLB`/`W_DSP`/`W_BRAM`), available resources and per-resource
//!    utilization — see [`requirements`], [`prr`].
//! 2. **Partial bitstream size model** (§III.C, Eqs. 18–23): from a PRR
//!    organization, predict the partial bitstream's exact byte size — see
//!    [`bits`].
//!
//! [`search`] implements the paper's Fig. 1 flow tying the two together: it
//! enumerates candidate heights, checks physical placeability on a target
//! device, and selects the PRR minimizing predicted bitstream size
//! (tie-breaking on PRR size, then height — the criterion reverse-engineered
//! from the paper's Table V results; `DESIGN.md` §6). [`multi`] extends the
//! sizing to several PRMs time-multiplexing one PRR, and [`timing`] models
//! the model-evaluation cost that Table VIII contrasts with the full design
//! flow.
//!
//! ## Quick start
//!
//! ```
//! use fabric::database::xc5vlx110t;
//! use synth::PaperPrm;
//! use prcost::search::plan_prr;
//!
//! let device = xc5vlx110t();
//! let report = PaperPrm::Fir.synth_report(device.family());
//! let plan = plan_prr(&report, &device).expect("FIR fits on the LX110T");
//! assert_eq!(plan.organization.height, 5);
//! assert_eq!(plan.organization.clb_cols, 2);
//! assert_eq!(plan.organization.dsp_cols, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod engine;
pub mod error;
pub mod full;
pub mod metrics;
pub mod multi;
pub mod prr;
pub mod report;
pub mod requirements;
pub mod rng;
pub mod search;
pub mod service;
pub mod shard;
pub mod timing;

pub use bits::{bitstream_size_bytes, context_breakdown, BitstreamBreakdown, ContextBreakdown};
pub use engine::{Engine, EngineSnapshot, SnapshotError};
pub use error::CostError;
pub use full::{full_bitstream_size_bytes, FullBitstreamBreakdown};
pub use metrics::{Metrics, MetricsSnapshot};
pub use multi::plan_shared_prr;
pub use prr::{PrrOrganization, Utilization};
pub use report::datasheet;
pub use requirements::PrrRequirements;
pub use rng::Rng;
pub use search::{
    plan_prr, plan_prr_cached, plan_requirements_cached, Candidate, PlanScratch, PrrPlan,
    SearchTrace,
};
pub use service::{PlanService, ServiceConfig};
pub use shard::{DeviceId, PlanKey, Sharded};
