//! Dependency-free observability for the planning engine.
//!
//! A [`Metrics`] registry holds lock-free atomic counters (cache hits,
//! plan outcomes) and per-stage wall-clock histograms (log₂-bucketed,
//! behind a `parking_lot` mutex). Counters can be bumped concurrently
//! from every worker of a parallel sweep; [`Metrics::snapshot`] produces
//! a serializable [`MetricsSnapshot`] that `serde_json` exports for the
//! CLI's `--metrics` flag and the benchmark artifacts.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic event counter, safe to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ nanosecond buckets (covers 1 ns .. ~18 s and beyond).
const BUCKETS: usize = 40;

/// Accumulated wall-clock statistics for one pipeline stage.
#[derive(Debug, Clone)]
struct StageStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i` (clamped).
    buckets: [u64; BUCKETS],
}

impl StageStats {
    fn new() -> Self {
        StageStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Upper bound of the bucket holding the `q`-quantile sample.
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }
}

/// A thread-safe registry of engine counters and stage timings.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Generator synthesis runs actually executed.
    pub synth_calls: Counter,
    /// Synthesis requests answered from the per-family memo.
    pub synth_cache_hits: Counter,
    /// Device geometries derived.
    pub geometry_builds: Counter,
    /// Geometry requests answered from the per-device cache.
    pub geometry_cache_hits: Counter,
    /// Padded-fallback enumerations resolved (geometry-cached planning
    /// only; one per distinct composition with no exact window).
    pub padded_fallbacks: Counter,
    /// Plans attempted.
    pub plans: Counter,
    /// Plans answered from the engine's whole-plan memo.
    pub plan_cache_hits: Counter,
    /// Plans actually computed and inserted into the memo (memo misses
    /// that won the insertion race). The engine's accounting invariant is
    /// `plan_builds + plan_cache_hits == plans`: every plan either built
    /// its memo entry or was served by someone else's.
    pub plan_builds: Counter,
    /// Plans that found a feasible PRR.
    pub plans_feasible: Counter,
    /// Plans that failed (no placement, mismatched family, ...).
    pub plans_infeasible: Counter,
    stages: Mutex<BTreeMap<&'static str, StageStats>>,
    /// Labeled counter families (`"layout:allocs"`, `"flow:jobs"`, ...):
    /// open-ended observability for subsystems whose counters are not
    /// known to this crate at compile time. Keys are `family:name`
    /// strings; unknown families must be tolerated by every snapshot
    /// consumer (see the schema-stability test).
    labeled: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// New empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The process-wide registry used by the non-engine entry points
    /// (e.g. [`crate::plan_prr`]) so one-off planning is observable too.
    pub fn global() -> &'static Metrics {
        static GLOBAL: OnceLock<Metrics> = OnceLock::new();
        GLOBAL.get_or_init(Metrics::new)
    }

    /// Record one `elapsed` sample for `stage`.
    pub fn record_stage(&self, stage: &'static str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.stages
            .lock()
            .entry(stage)
            .or_insert_with(StageStats::new)
            .record(ns);
    }

    /// Run `f`, recording its wall-clock time under `stage`.
    pub fn time<T>(&self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_stage(stage, start.elapsed());
        out
    }

    /// Add `n` to the labeled counter `label` (created on first use).
    ///
    /// Labels follow the `family:name` convention (`"layout:allocs"`).
    /// Labeled counters trade the fixed counters' lock-free atomics for
    /// an open namespace; bump them per logical event, not per inner-loop
    /// iteration.
    pub fn add_labeled(&self, label: &str, n: u64) {
        let mut map = self.labeled.lock();
        match map.get_mut(label) {
            Some(v) => *v += n,
            None => {
                map.insert(label.to_string(), n);
            }
        }
    }

    /// Add one to the labeled counter `label`.
    pub fn incr_labeled(&self, label: &str) {
        self.add_labeled(label, 1);
    }

    /// Current value of the labeled counter `label` (zero if never hit).
    pub fn labeled(&self, label: &str) -> u64 {
        self.labeled.lock().get(label).copied().unwrap_or(0)
    }

    /// Copy of all counters, labeled counters and stages.
    ///
    /// A snapshot taken while workers are bumping counters is **not** an
    /// atomic cut of the registry — the counters are independent relaxed
    /// atomics, and no lock synchronizes them. (An earlier revision
    /// claimed a "consistent point-in-time copy"; that was never true.)
    /// What a concurrent snapshot *does* guarantee is that the engine's
    /// accounting inequalities hold in the copy:
    ///
    /// * `plans_feasible + plans_infeasible <= plans`
    /// * `plan_builds + plan_cache_hits <= plans`
    ///
    /// This works because the engine bumps each total **before** its
    /// parts (a plan increments `plans`, then later exactly one of the
    /// outcome and one of the build/hit counters), while the snapshot
    /// reads the parts **before** the totals: any part-increment visible
    /// to the early read had its total-increment ordered before it, so
    /// the later total read sees at least as many. The gaps, if any, are
    /// exactly the plans in flight between the two reads; on a quiescent
    /// registry both inequalities are equalities. Each `BTreeMap` behind
    /// a mutex (stages, labeled counters) is internally consistent — it
    /// is copied under its lock.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let labeled = self
            .labeled
            .lock()
            .iter()
            .map(|(name, &value)| LabeledCounter {
                name: name.clone(),
                value,
            })
            .collect();
        let stages = self
            .stages
            .lock()
            .iter()
            .map(|(name, s)| StageSnapshot {
                name: (*name).to_string(),
                count: s.count,
                total_ns: s.total_ns,
                mean_ns: s.total_ns.checked_div(s.count).unwrap_or(0),
                min_ns: if s.count == 0 { 0 } else { s.min_ns },
                max_ns: s.max_ns,
                p50_ns: s.quantile_ns(0.50),
                p90_ns: s.quantile_ns(0.90),
                p99_ns: s.quantile_ns(0.99),
                buckets: {
                    let used = s.buckets.iter().rposition(|&n| n != 0).map_or(0, |i| i + 1);
                    s.buckets[..used].to_vec()
                },
            })
            .collect();
        // Parts strictly before totals (see the doc comment): outcome and
        // build/hit splits first, `plans` last.
        let plans_feasible = self.plans_feasible.get();
        let plans_infeasible = self.plans_infeasible.get();
        let plan_cache_hits = self.plan_cache_hits.get();
        let plan_builds = self.plan_builds.get();
        let plans = self.plans.get();
        MetricsSnapshot {
            counters: CounterSnapshot {
                synth_calls: self.synth_calls.get(),
                synth_cache_hits: self.synth_cache_hits.get(),
                geometry_builds: self.geometry_builds.get(),
                geometry_cache_hits: self.geometry_cache_hits.get(),
                // Probe and composition counts live in the interned
                // geometries; a bare registry reports zero and the batch
                // engine's snapshot folds the real values in.
                window_probes: 0,
                distinct_compositions: 0,
                padded_fallbacks: self.padded_fallbacks.get(),
                plans,
                plan_cache_hits,
                plan_builds,
                plans_feasible,
                plans_infeasible,
            },
            stages,
            labeled,
        }
    }
}

/// Point-in-time counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Generator synthesis runs actually executed.
    pub synth_calls: u64,
    /// Synthesis requests answered from the per-family memo.
    pub synth_cache_hits: u64,
    /// Device geometries derived.
    pub geometry_builds: u64,
    /// Geometry requests answered from the per-device cache.
    pub geometry_cache_hits: u64,
    /// Composition-index probes answered by the interned geometries (every
    /// probe is a lock-free O(1) lookup — there is no hit/miss split).
    pub window_probes: u64,
    /// Distinct achievable compositions interned across the geometries.
    pub distinct_compositions: u64,
    /// Padded-fallback enumerations resolved (one per distinct composition
    /// with no exact-fit window).
    pub padded_fallbacks: u64,
    /// Plans attempted.
    pub plans: u64,
    /// Plans answered from the whole-plan memo.
    pub plan_cache_hits: u64,
    /// Plans computed and inserted into the memo (`plan_builds +
    /// plan_cache_hits == plans` on a quiescent engine).
    pub plan_builds: u64,
    /// Plans with a feasible PRR.
    pub plans_feasible: u64,
    /// Plans that failed.
    pub plans_infeasible: u64,
}

impl CounterSnapshot {
    /// Synthesis memo hit rate in `[0, 1]` (`None` with no requests).
    pub fn synth_hit_rate(&self) -> Option<f64> {
        rate(
            self.synth_cache_hits,
            self.synth_calls + self.synth_cache_hits,
        )
    }

    /// Geometry cache hit rate in `[0, 1]`.
    pub fn geometry_hit_rate(&self) -> Option<f64> {
        rate(
            self.geometry_cache_hits,
            self.geometry_builds + self.geometry_cache_hits,
        )
    }

    /// Whole-plan memo hit rate in `[0, 1]`.
    pub fn plan_hit_rate(&self) -> Option<f64> {
        rate(self.plan_cache_hits, self.plans)
    }
}

fn rate(hits: u64, total: u64) -> Option<f64> {
    (total > 0).then(|| hits as f64 / total as f64)
}

/// Point-in-time statistics for one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage name (`"synth"`, `"plan"`, `"geometry"`, ...).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u64,
    /// Mean nanoseconds per sample.
    pub mean_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound).
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// Full log₂-nanosecond histogram: `buckets[i]` counts samples with
    /// `floor(log2(ns)) == i`, trailing zero buckets trimmed. Exported so
    /// benchmark artifacts (e.g. `BENCH_pipeline.json`) carry per-stage
    /// latency distributions, not just point quantiles.
    pub buckets: Vec<u64>,
}

/// `buckets` joined the schema after snapshots already existed in the
/// wild, so it rides the same tolerance contract as
/// `MetricsSnapshot::labeled`: serialized after the original fields,
/// optional (empty) on the way back in.
impl Serialize for StageSnapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("count".to_string(), self.count.to_value()),
            ("total_ns".to_string(), self.total_ns.to_value()),
            ("mean_ns".to_string(), self.mean_ns.to_value()),
            ("min_ns".to_string(), self.min_ns.to_value()),
            ("max_ns".to_string(), self.max_ns.to_value()),
            ("p50_ns".to_string(), self.p50_ns.to_value()),
            ("p90_ns".to_string(), self.p90_ns.to_value()),
            ("p99_ns".to_string(), self.p99_ns.to_value()),
            ("buckets".to_string(), self.buckets.to_value()),
        ])
    }
}

impl Deserialize for StageSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(StageSnapshot {
            name: serde::__field(v, "name")?,
            count: serde::__field(v, "count")?,
            total_ns: serde::__field(v, "total_ns")?,
            mean_ns: serde::__field(v, "mean_ns")?,
            min_ns: serde::__field(v, "min_ns")?,
            max_ns: serde::__field(v, "max_ns")?,
            p50_ns: serde::__field(v, "p50_ns")?,
            p90_ns: serde::__field(v, "p90_ns")?,
            p99_ns: serde::__field(v, "p99_ns")?,
            buckets: serde::__field(v, "buckets").unwrap_or_default(),
        })
    }
}

/// One labeled counter value (`family:name` key).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledCounter {
    /// Counter label, `family:name` (`"layout:allocs"`).
    pub name: String,
    /// Point-in-time value.
    pub value: u64,
}

/// A complete exportable metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: CounterSnapshot,
    /// Per-stage wall-clock statistics, sorted by stage name.
    pub stages: Vec<StageSnapshot>,
    /// Labeled counter families, sorted by label. New families may appear
    /// in any release; consumers must ignore labels they don't know.
    pub labeled: Vec<LabeledCounter>,
}

/// `labeled` is serialized after the original fields and is optional on
/// the way back in: snapshots written before the field existed (and
/// snapshots from future producers that drop it) still deserialize, with
/// `labeled` empty. This is the schema-stability contract the layout
/// counters ride on — adding a counter family never breaks a consumer.
impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("counters".to_string(), self.counters.to_value()),
            ("stages".to_string(), self.stages.to_value()),
            ("labeled".to_string(), self.labeled.to_value()),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(MetricsSnapshot {
            counters: serde::__field(v, "counters")?,
            stages: serde::__field(v, "stages")?,
            labeled: serde::__field(v, "labeled").unwrap_or_default(),
        })
    }
}

impl MetricsSnapshot {
    /// Total recorded time of `stage` (zero if absent).
    pub fn stage_total(&self, stage: &str) -> Duration {
        self.stages
            .iter()
            .find(|s| s.name == stage)
            .map(|s| Duration::from_nanos(s.total_ns))
            .unwrap_or(Duration::ZERO)
    }

    /// Value of the labeled counter `name` (zero if absent).
    pub fn labeled_value(&self, name: &str) -> u64 {
        self.labeled
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// All labeled counters of one family (`prefix` up to the `:`), in
    /// label order.
    pub fn labeled_family<'s>(
        &'s self,
        family: &'s str,
    ) -> impl Iterator<Item = &'s LabeledCounter> {
        self.labeled.iter().filter(move |c| {
            c.name
                .strip_prefix(family)
                .is_some_and(|r| r.starts_with(':'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.plans.incr();
        m.plans.add(2);
        assert_eq!(m.plans.get(), 3);
        assert_eq!(m.snapshot().counters.plans, 3);
    }

    #[test]
    fn stage_stats_are_recorded() {
        let m = Metrics::new();
        m.record_stage("plan", Duration::from_micros(10));
        m.record_stage("plan", Duration::from_micros(30));
        let snap = m.snapshot();
        let s = &snap.stages[0];
        assert_eq!(s.name, "plan");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40_000);
        assert_eq!(s.mean_ns, 20_000);
        assert_eq!(s.min_ns, 10_000);
        assert_eq!(s.max_ns, 30_000);
        assert!(s.p50_ns >= 10_000);
        assert_eq!(snap.stage_total("plan"), Duration::from_nanos(40_000));
        assert_eq!(snap.stage_total("absent"), Duration::ZERO);
    }

    #[test]
    fn stage_buckets_export_and_schema_tolerance() {
        let m = Metrics::new();
        m.record_stage("pipeline:plan", Duration::from_nanos(10)); // log2 → 3
        m.record_stage("pipeline:plan", Duration::from_nanos(1024)); // log2 → 10
        let snap = m.snapshot();
        let s = &snap.stages[0];
        assert_eq!(s.buckets.len(), 11, "trailing zeros trimmed");
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        // A pre-`buckets` snapshot still parses, with the field empty.
        let serde::Value::Object(mut entries) = s.to_value() else {
            panic!("stage serializes as an object");
        };
        entries.retain(|(k, _)| k != "buckets");
        let old = StageSnapshot::from_value(&serde::Value::Object(entries)).unwrap();
        assert!(old.buckets.is_empty());
        assert_eq!(old.count, s.count);
        // And the full snapshot round-trips the histogram through JSON.
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let parsed: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.stages[0].buckets, s.buckets);
    }

    #[test]
    fn time_returns_the_closure_value() {
        let m = Metrics::new();
        let v = m.time("stage", || 42);
        assert_eq!(v, 42);
        assert_eq!(m.snapshot().stages[0].count, 1);
    }

    #[test]
    fn hit_rates() {
        let c = CounterSnapshot {
            synth_calls: 1,
            synth_cache_hits: 3,
            geometry_builds: 2,
            geometry_cache_hits: 2,
            window_probes: 10,
            distinct_compositions: 120,
            padded_fallbacks: 2,
            plans: 4,
            plan_cache_hits: 1,
            plan_builds: 3,
            plans_feasible: 3,
            plans_infeasible: 1,
        };
        assert_eq!(c.synth_hit_rate(), Some(0.75));
        assert_eq!(c.geometry_hit_rate(), Some(0.5));
        assert_eq!(c.plan_hit_rate(), Some(0.25));
        let empty = CounterSnapshot {
            synth_calls: 0,
            synth_cache_hits: 0,
            geometry_builds: 0,
            geometry_cache_hits: 0,
            window_probes: 0,
            distinct_compositions: 0,
            padded_fallbacks: 0,
            plans: 0,
            plan_cache_hits: 0,
            plan_builds: 0,
            plans_feasible: 0,
            plans_infeasible: 0,
        };
        assert_eq!(empty.synth_hit_rate(), None);
    }

    #[test]
    fn snapshot_round_trips_through_value() {
        let m = Metrics::new();
        m.synth_calls.add(2);
        m.record_stage("synth", Duration::from_nanos(1234));
        m.add_labeled("layout:allocs", 7);
        let snap = m.snapshot();
        let v = snap.to_value();
        let back = MetricsSnapshot::from_value(&v).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn labeled_counters_accumulate_and_snapshot_sorted() {
        let m = Metrics::new();
        m.incr_labeled("layout:releases");
        m.add_labeled("layout:allocs", 3);
        m.incr_labeled("layout:allocs");
        m.incr_labeled("flow:jobs");
        assert_eq!(m.labeled("layout:allocs"), 4);
        assert_eq!(m.labeled("layout:missing"), 0);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.labeled.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["flow:jobs", "layout:allocs", "layout:releases"]);
        assert_eq!(snap.labeled_value("layout:allocs"), 4);
        assert_eq!(snap.labeled_value("unknown:x"), 0);
        let layout: Vec<&str> = snap
            .labeled_family("layout")
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(layout, vec!["layout:allocs", "layout:releases"]);
    }

    /// Schema stability both directions: snapshots written before the
    /// `labeled` family existed still parse (field defaults to empty), and
    /// snapshots carrying label families a consumer has never heard of
    /// parse without error — consumers select by label, never by position.
    #[test]
    fn snapshot_schema_is_stable_across_label_families() {
        let m = Metrics::new();
        m.plans.add(5);
        let snap = m.snapshot();

        // Pre-`labeled` producer: strip the field entirely.
        let serde::Value::Object(mut entries) = snap.to_value() else {
            panic!("snapshot serializes as an object");
        };
        entries.retain(|(k, _)| k != "labeled");
        let old = MetricsSnapshot::from_value(&serde::Value::Object(entries)).unwrap();
        assert_eq!(old.counters.plans, 5);
        assert!(old.labeled.is_empty());

        // Future producer: unknown label families and extra top-level
        // fields must both be tolerated.
        let m2 = Metrics::new();
        m2.add_labeled("hologram:emitters", 9);
        let serde::Value::Object(mut entries) = m2.snapshot().to_value() else {
            panic!("snapshot serializes as an object");
        };
        entries.push(("future_field".to_string(), serde::Value::UInt(1)));
        let new = MetricsSnapshot::from_value(&serde::Value::Object(entries)).unwrap();
        assert_eq!(new.labeled_value("hologram:emitters"), 9);
        assert_eq!(new.labeled_value("layout:allocs"), 0);

        // And the JSON text form round-trips the same way.
        let text = serde_json::to_string_pretty(&m2.snapshot()).unwrap();
        let parsed: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.labeled_value("hologram:emitters"), 9);
    }
}
