//! Full-device bitstream size model (the non-PR comparator).
//!
//! The paper's opening comparison: partial reconfiguration "affords faster
//! reconfiguration time and smaller bitstreams" than full reconfiguration,
//! which rewrites *every* frame of *every* column (IOB and clock columns
//! included) and halts the whole device while doing so. This module
//! extends Eq. 18 to the full device so the PR-vs-non-PR trade can be
//! quantified (see `multitask::sim::simulate_full_reconfig` and the
//! `ablation_pr_vs_nonpr` bench target).

use fabric::{Device, ResourceKind};
use serde::{Deserialize, Serialize};

/// Word-level decomposition of a full-device bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullBitstreamBreakdown {
    /// Configuration frames per device row (all columns + pad frame).
    pub config_frames_per_row: u64,
    /// BRAM initialization frames per device row (all BRAM columns + pad).
    pub bram_frames_per_row: u64,
    /// Device rows.
    pub rows: u64,
    /// Total words including `IW`/`FW` and per-row `FAR_FDRI` overhead.
    pub total_words: u64,
    /// Bytes per configuration word.
    pub bytes_per_word: u64,
}

impl FullBitstreamBreakdown {
    /// Full bitstream size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_words * self.bytes_per_word
    }
}

/// Evaluate the full-device analogue of Eqs. 18–23 for `device`.
pub fn full_breakdown(device: &Device) -> FullBitstreamBreakdown {
    let g = &device.params().frames;
    let fr = u64::from(g.fr_size);
    let far_fdri = u64::from(g.far_fdri);

    let config_frames: u64 = device
        .columns()
        .iter()
        .map(|&c| u64::from(g.frames_per_column(c)))
        .sum::<u64>()
        + 1;
    let bram_cols = device
        .columns()
        .iter()
        .filter(|&&c| c == ResourceKind::Bram)
        .count() as u64;
    let bram_frames = if bram_cols > 0 {
        bram_cols * u64::from(g.df_bram) + 1
    } else {
        0
    };

    let rows = u64::from(device.rows());
    let per_row = far_fdri
        + config_frames * fr
        + if bram_frames > 0 {
            far_fdri + bram_frames * fr
        } else {
            0
        };
    let total_words = u64::from(g.iw) + rows * per_row + u64::from(g.fw);

    FullBitstreamBreakdown {
        config_frames_per_row: config_frames,
        bram_frames_per_row: bram_frames,
        rows,
        total_words,
        bytes_per_word: u64::from(g.bytes_word),
    }
}

/// Full-device bitstream size in bytes.
pub fn full_bitstream_size_bytes(device: &Device) -> u64 {
    full_breakdown(device).total_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bitstream_size_bytes;
    use crate::prr::PrrOrganization;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;

    /// Paper claim: the full bitstream dwarfs any partial bitstream. The
    /// real LX110T full bitstream is ~3.9 MB; our synthetic layout lands
    /// in the same regime and is >20x the largest paper partial bitstream.
    #[test]
    fn full_dwarfs_partial() {
        let device = xc5vlx110t();
        let full = full_bitstream_size_bytes(&device);
        assert!(full > 3_000_000, "full bitstream {full} B");
        assert!(full < 8_000_000, "full bitstream {full} B");
        assert!(full > 20 * 157_272, "vs MIPS partial");
    }

    /// A PRR covering every reconfigurable column of every row still costs
    /// less than the full bitstream (IOB/CLK frames and their overhead are
    /// the difference).
    #[test]
    fn whole_fabric_prr_is_below_full() {
        let device = xc6vlx75t();
        let counts = device.column_counts();
        let org = PrrOrganization {
            family: Family::Virtex6,
            height: device.rows(),
            clb_cols: counts.clb() as u32,
            dsp_cols: counts.dsp() as u32,
            bram_cols: counts.bram() as u32,
        };
        assert!(bitstream_size_bytes(&org) < full_bitstream_size_bytes(&device));
    }

    #[test]
    fn scales_with_device_size() {
        let small = fabric::device_by_name("xc6slx16").unwrap();
        let big = fabric::device_by_name("xc6slx45").unwrap();
        assert!(full_bitstream_size_bytes(&big) > full_bitstream_size_bytes(&small));
    }

    #[test]
    fn sixteen_bit_words_halve_byte_cost() {
        let s6 = fabric::device_by_name("xc6slx16").unwrap();
        let b = full_breakdown(&s6);
        assert_eq!(b.bytes_per_word, 2);
        assert_eq!(b.total_bytes(), b.total_words * 2);
    }
}
