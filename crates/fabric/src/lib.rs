//! # `fabric` — Xilinx Virtex-style FPGA fabric model
//!
//! This crate is the device substrate for the PR cost-model reproduction.
//! It models the aspects of a partially reconfigurable FPGA fabric that the
//! cost models of Morales-Villanueva & Gordon-Ross (IPPS 2015) consume:
//!
//! * **Resource kinds** ([`ResourceKind`]) — CLB, DSP, BRAM, IOB, CLK — and
//!   counted bundles of them ([`Resources`]).
//! * **Device families** ([`Family`], [`FamilyParams`]) — the Table II
//!   fabric constants (CLBs/DSPs/BRAMs per column per row, LUTs/FFs per CLB)
//!   and the Table IV configuration-plane constants (frames per column,
//!   frame size, initial/final word counts).
//! * **Column layouts and devices** ([`ColumnKind`], [`Device`]) — a device
//!   is a rectangular grid of `rows` fabric rows over an ordered list of
//!   resource columns, mirroring the Virtex-5/-6 two-dimensional PR layout.
//! * **Window search** ([`device::Device::find_window`]) — locating a span of
//!   contiguous columns with a requested resource-column mix and no IOB/CLK
//!   columns, which is the physical-feasibility check in the paper's Fig. 1
//!   flow.
//! * **Site grid** ([`grid::SiteGrid`]) — a finer-grained view (individual
//!   CLB/DSP/BRAM sites) used by the simulated place-and-route flow in the
//!   `parflow` crate.
//!
//! The device database ([`database`]) contains synthetic-but-realistic
//! layouts for the two parts evaluated in the paper (Virtex-5 LX110T,
//! Virtex-6 LX75T) plus several additional parts per family so the models'
//! portability claims can be exercised. Layout facts stated in the paper
//! (LX110T has 8 fabric rows and exactly one DSP column; LX75T has 3 rows)
//! are preserved exactly; remaining column mixes follow the public Xilinx
//! user guides. See `DESIGN.md` §2 and §5 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod database;
pub mod device;
pub mod error;
pub mod family;
pub mod geometry;
pub mod grid;
pub mod reference;
pub mod resource;
pub mod window;

pub use column::ColumnKind;
pub use database::{all_devices, device_by_name};
pub use device::{splitmix64, Device};
pub use error::FabricError;
pub use family::{Family, FamilyParams, FrameGeometry};
pub use geometry::DeviceGeometry;
pub use resource::{ResourceKind, Resources};
pub use window::{Window, WindowRequest};
