//! Error type for fabric construction and queries.

use core::fmt;

/// Errors raised while building or querying a device fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Device construction was given zero rows or zero columns.
    EmptyFabric,
    /// A named device was not found in the database.
    UnknownDevice(String),
    /// A column index was out of range for the device.
    ColumnOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of columns in the device.
        width: usize,
    },
    /// A row index/span was out of range for the device (rows are 1-based,
    /// following the paper's `r + H - 1 <= R` convention).
    RowOutOfRange {
        /// First row of the span (1-based).
        row: u32,
        /// Height of the span.
        height: u32,
        /// Number of fabric rows in the device.
        rows: u32,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::EmptyFabric => write!(f, "device fabric must have >=1 row and >=1 column"),
            FabricError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
            FabricError::ColumnOutOfRange { index, width } => {
                write!(
                    f,
                    "column index {index} out of range (device has {width} columns)"
                )
            }
            FabricError::RowOutOfRange { row, height, rows } => write!(
                f,
                // Saturate: adversarial row/height near u32::MAX must not
                // overflow while formatting the very error they triggered.
                "row span [{row}, {}] out of range (device has {rows} rows)",
                row.saturating_add(height.saturating_sub(1))
            ),
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = FabricError::RowOutOfRange {
            row: 7,
            height: 3,
            rows: 8,
        };
        assert_eq!(
            e.to_string(),
            "row span [7, 9] out of range (device has 8 rows)"
        );
        assert!(FabricError::UnknownDevice("xc9k".into())
            .to_string()
            .contains("xc9k"));
    }

    #[test]
    fn row_out_of_range_display_saturates() {
        let e = FabricError::RowOutOfRange {
            row: u32::MAX,
            height: u32::MAX,
            rows: 8,
        };
        // Must not overflow while formatting; saturates at u32::MAX.
        assert_eq!(
            e.to_string(),
            format!(
                "row span [{0}, {0}] out of range (device has 8 rows)",
                u32::MAX
            )
        );
    }
}
