//! Composition-indexed device geometry: every window-feasibility probe is
//! a lock-free O(1) hash lookup against an index built once per device.
//!
//! The Fig. 1 search probes the same device with many
//! [`WindowRequest`]s: one per candidate height, and — when a height has
//! no exact-composition window — hundreds more for padded organizations.
//! [`Device::find_window`] answers each probe by rescanning the column
//! list and tallying every candidate span (O(columns × width) per probe);
//! the previous geometry (frozen as
//! [`reference::MemoGeometry`](crate::reference::MemoGeometry)) memoized
//! those scans behind a `Mutex`, so cold probes still rescanned and every
//! probe serialized through the lock.
//!
//! [`DeviceGeometry`] instead *enumerates the entire answer space up
//! front*. A window is a span of contiguous columns containing no IOB/CLK
//! column, so every feasible window lives inside one of the maximal
//! IOB/CLK-free **runs** of the column list. At construction we walk each
//! run once per start column, extending the span one column at a time with
//! O(1) count updates, and intern each achievable composition
//! `(W_CLB, W_DSP, W_BRAM)` → leftmost start column into a hash table.
//! Starts are visited in ascending order across and within runs, so
//! first-insert-wins yields exactly the leftmost match that
//! [`Device::find_window`] would find. Construction is O(Σ runᵢ²) — a few
//! thousand span visits even on the widest database device — and the
//! resulting table is immutable, so probes are lock-free and shared
//! geometry scales linearly across sweep worker threads.
//!
//! A composition absent from the index has no window on the device, and
//! the zero composition `(0, 0, 0)` is never indexed (spans have width
//! ≥ 1) — both return `None`, exactly as the rescan does. Results are
//! byte-identical to [`Device::find_window`]; the equivalence suite in
//! `crates/fabric/tests/window_props.rs` checks all three implementations
//! against each other on every database device and on random fabrics.

use crate::device::Device;
use crate::window::{Window, WindowRequest};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

/// Packs a composition into one `u64` index key: 21 bits per count, far
/// above any device's column count.
fn comp_key(clb: u32, dsp: u32, bram: u32) -> u64 {
    (u64::from(clb) << 42) | (u64::from(dsp) << 21) | u64::from(bram)
}

/// Single-multiply hasher for the packed composition keys. The padded
/// fallback probes the index hundreds of times per resolution, so probe
/// latency matters: this replaces SipHash with a splitmix64 finalizer —
/// a few ALU ops, well-mixed low bits for the table's bucket selection.
#[derive(Default)]
struct CompKeyHasher(u64);

impl Hasher for CompKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("composition keys hash as u64");
    }

    fn write_u64(&mut self, key: u64) {
        let mut x = key;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

/// Precomputed window-search geometry for one [`Device`]: a read-only
/// composition → leftmost-start index.
#[derive(Debug)]
pub struct DeviceGeometry {
    rows: u32,
    width: usize,
    /// [`Device::layout_hash`] of the device this index was built from,
    /// recorded so callers handed a (device, geometry) pair can cheaply
    /// verify they belong together.
    source_hash: u64,
    /// Packed `(W_CLB, W_DSP, W_BRAM)` → leftmost start column of a
    /// matching span. Immutable after construction; absent ⇒ no window
    /// exists.
    index: HashMap<u64, u32, BuildHasherDefault<CompKeyHasher>>,
    probes: AtomicU64,
}

impl DeviceGeometry {
    /// Build the composition index of `device`.
    ///
    /// Walks the maximal IOB/CLK-free runs ([`Device::prr_free_runs`]),
    /// then for each start column in each run extends the span rightward
    /// with O(1) incremental counts, interning every composition on first
    /// sight (ascending start order ⇒ the stored start is the leftmost).
    pub fn new(device: &Device) -> Self {
        let columns = device.columns();
        let mut index: HashMap<u64, u32, BuildHasherDefault<CompKeyHasher>> = HashMap::default();
        for run in device.prr_free_runs() {
            for start in run.clone() {
                let mut counts = [0u32; 3];
                for &kind in &columns[start..run.end] {
                    counts[kind.prr_count_slot()] += 1;
                    index
                        .entry(comp_key(counts[0], counts[1], counts[2]))
                        .or_insert(start as u32);
                }
            }
        }
        DeviceGeometry {
            rows: device.rows(),
            width: device.width(),
            source_hash: device.layout_hash(),
            index,
            probes: AtomicU64::new(0),
        }
    }

    /// [`Device::layout_hash`] of the device this geometry was derived
    /// from. The planning engine debug-asserts this against the device it
    /// is handed alongside a caller-supplied geometry — a mismatched pair
    /// would otherwise silently memoize a wrong plan under the right key.
    pub fn source_layout_hash(&self) -> u64 {
        self.source_hash
    }

    /// Whether this geometry was derived from `device` (layout-hash
    /// identity; collisions aside, equivalent to having been built by
    /// [`DeviceGeometry::new`] on an equal device).
    pub fn matches_device(&self, device: &Device) -> bool {
        self.source_hash == device.layout_hash()
            && self.width == device.width()
            && self.rows == device.rows()
    }

    /// Fabric rows of the underlying device.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Column count of the underlying device.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Leftmost start column of a span containing exactly `clb`/`dsp`/
    /// `bram` columns of each kind and no IOB/CLK columns, or `None`.
    /// Lock-free O(1): one probe of the read-only composition index.
    /// The answer is independent of any requested height.
    pub fn leftmost_start(&self, clb: u32, dsp: u32, bram: u32) -> Option<usize> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.index
            .get(&comp_key(clb, dsp, bram))
            .map(|&s| s as usize)
    }

    /// Leftmost window matching `req` on `device`, behaviorally identical
    /// to [`Device::find_window`] but answered from the composition index.
    ///
    /// `device` must be the device this geometry was derived from (checked
    /// in debug builds by column count).
    pub fn find_window(&self, device: &Device, req: &WindowRequest) -> Option<Window> {
        debug_assert_eq!(device.width(), self.width, "geometry/device mismatch");
        if req.height < 1 || req.height > self.rows || req.width() < 1 {
            return None;
        }
        let start = self.leftmost_start(req.clb_cols, req.dsp_cols, req.bram_cols)?;
        let width = req.width() as usize;
        Some(Window {
            start_col: start,
            width: req.width(),
            row: 1,
            height: req.height,
            columns: device.columns()[start..start + width].to_vec(),
        })
    }

    /// Number of distinct achievable compositions interned for this device
    /// (the index size; fixed at construction).
    pub fn distinct_compositions(&self) -> u64 {
        self.index.len() as u64
    }

    /// Total composition-index probes answered (via [`Self::leftmost_start`],
    /// directly or through [`Self::find_window`]).
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Approximate resident size of the composition index in bytes
    /// (allocated key/value slots; excludes the hash table's control
    /// metadata, so treat it as a lower-bound estimate).
    pub fn index_bytes(&self) -> usize {
        self.index.capacity() * mem::size_of::<(u64, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use crate::database::all_devices;
    use crate::family::Family;
    use crate::reference::MemoGeometry;
    use crate::resource::ResourceKind::*;

    fn tiny() -> Device {
        Device::from_spec(
            "tiny",
            Family::Virtex5,
            4,
            &[
                ColumnSpec::one(Iob),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Bram),
                ColumnSpec::one(Clb),
                ColumnSpec::one(Dsp),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Clk),
                ColumnSpec::one(Clb),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_device_find_window_on_tiny() {
        let d = tiny();
        let geo = DeviceGeometry::new(&d);
        let memo = MemoGeometry::new(&d);
        for clb in 0..4 {
            for dsp in 0..2 {
                for bram in 0..2 {
                    for h in 0..6 {
                        let req = WindowRequest::new(clb, dsp, bram, h);
                        let expected = d.find_window(&req);
                        assert_eq!(geo.find_window(&d, &req), expected, "req {req:?}");
                        assert_eq!(memo.find_window(&d, &req), expected, "req {req:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_device_find_window_on_database() {
        for d in all_devices() {
            let geo = DeviceGeometry::new(&d);
            for clb in [0, 1, 2, 5, 17] {
                for dsp in [0, 1, 2] {
                    for bram in [0, 1, 2] {
                        let req = WindowRequest::new(clb, dsp, bram, 1);
                        assert_eq!(
                            geo.find_window(&d, &req),
                            d.find_window(&req),
                            "{} {req:?}",
                            d.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn probes_accumulate_and_index_is_populated() {
        let d = tiny();
        let geo = DeviceGeometry::new(&d);
        assert!(geo.distinct_compositions() > 0);
        assert!(geo.index_bytes() > 0);
        let w1 = geo.find_window(&d, &WindowRequest::new(2, 0, 1, 1));
        let w4 = geo.find_window(&d, &WindowRequest::new(2, 0, 1, 4));
        // Different heights share one composition entry: same start column.
        assert_eq!(w1.unwrap().start_col, w4.unwrap().start_col);
        assert_eq!(geo.probe_count(), 2);
    }

    #[test]
    fn infeasible_height_short_circuits() {
        let d = tiny();
        let geo = DeviceGeometry::new(&d);
        assert!(geo
            .find_window(&d, &WindowRequest::new(1, 0, 0, 5))
            .is_none());
        assert!(geo
            .find_window(&d, &WindowRequest::new(0, 0, 0, 1))
            .is_none());
        // Height short-circuits never touch (and never count) a probe.
        assert_eq!(geo.probe_count(), 0);
    }

    #[test]
    fn index_enumerates_every_achievable_composition() {
        // Brute-force every span of every database device: each clean span's
        // composition must be indexed with the leftmost matching start, and
        // nothing else may be indexed.
        for d in all_devices() {
            let geo = DeviceGeometry::new(&d);
            let cols = d.columns();
            let mut expected: HashMap<(u32, u32, u32), u32> = HashMap::new();
            for start in 0..cols.len() {
                for end in start + 1..=cols.len() {
                    let span = &cols[start..end];
                    if span.iter().any(|k| !k.allowed_in_prr()) {
                        continue;
                    }
                    let mut c = [0u32; 3];
                    for k in span {
                        c[k.prr_count_slot()] += 1;
                    }
                    expected.entry((c[0], c[1], c[2])).or_insert(start as u32);
                }
            }
            assert_eq!(
                geo.distinct_compositions(),
                expected.len() as u64,
                "{}",
                d.name()
            );
            for (&(clb, dsp, bram), &start) in &expected {
                assert_eq!(
                    geo.leftmost_start(clb, dsp, bram),
                    Some(start as usize),
                    "{} ({clb},{dsp},{bram})",
                    d.name()
                );
            }
        }
    }
}
