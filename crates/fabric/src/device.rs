//! Devices: a named fabric of `rows` × an ordered column layout.

use crate::column::{expand, ColumnKind, ColumnSpec};
use crate::error::FabricError;
use crate::family::{Family, FamilyParams};
use crate::resource::{ResourceKind, Resources};
use crate::window::{Window, WindowRequest};
use serde::{Deserialize, Serialize};

/// The splitmix64 finalizer: a fast, well-mixed 64→64-bit hash used
/// throughout the workspace for packed-key hashing and shard selection
/// (the same mixer the composition index's probe hasher uses).
pub fn splitmix64(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One FPGA part: a family, a number of fabric rows, and an ordered list of
/// full-height resource columns (the Virtex-5+ two-dimensional PR layout).
///
/// Rows are 1-based (the paper searches "from the bottom of the device
/// fabric (row = 1)" and requires `r + H - 1 <= R`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    family: Family,
    rows: u32,
    columns: Vec<ColumnKind>,
}

impl Device {
    /// Build a device from an explicit column list.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        rows: u32,
        columns: Vec<ColumnKind>,
    ) -> Result<Self, FabricError> {
        if rows == 0 || columns.is_empty() {
            return Err(FabricError::EmptyFabric);
        }
        Ok(Device {
            name: name.into(),
            family,
            rows,
            columns,
        })
    }

    /// Build a device from run-length column segments.
    pub fn from_spec(
        name: impl Into<String>,
        family: Family,
        rows: u32,
        spec: &[ColumnSpec],
    ) -> Result<Self, FabricError> {
        Device::new(name, family, rows, expand(spec))
    }

    /// Part name, e.g. `"xc5vlx110t"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Family constants (Table II + Table IV).
    pub fn params(&self) -> &'static FamilyParams {
        self.family.params()
    }

    /// Number of fabric rows `R`.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns across the device.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The ordered column layout.
    pub fn columns(&self) -> &[ColumnKind] {
        &self.columns
    }

    /// Kind of column `index` (0-based, left to right).
    pub fn column(&self, index: usize) -> Result<ColumnKind, FabricError> {
        self.columns
            .get(index)
            .copied()
            .ok_or(FabricError::ColumnOutOfRange {
                index,
                width: self.columns.len(),
            })
    }

    /// Number of columns of each kind across the whole device.
    pub fn column_counts(&self) -> Resources {
        let mut counts = Resources::ZERO;
        for &c in &self.columns {
            counts[c] += 1;
        }
        counts
    }

    /// Number of DSP columns. The paper's Eq. (4) special case applies when
    /// this is 1 (e.g. the Virtex-5 LX110T).
    pub fn dsp_column_count(&self) -> usize {
        self.columns
            .iter()
            .filter(|&&c| c == ResourceKind::Dsp)
            .count()
    }

    /// Total device resources: per-kind column count × rows × resources per
    /// column per row.
    pub fn total_resources(&self) -> Resources {
        let p = self.params();
        let cols = self.column_counts();
        let mut total = Resources::ZERO;
        for k in ResourceKind::RECONFIGURABLE {
            total[k] = cols.get(k) * u64::from(self.rows) * u64::from(p.per_column(k));
        }
        total
    }

    /// Total LUTs in the device.
    pub fn total_luts(&self) -> u64 {
        self.total_resources().clb() * u64::from(self.params().lut_clb)
    }

    /// Total flip-flops in the device.
    pub fn total_ffs(&self) -> u64 {
        self.total_resources().clb() * u64::from(self.params().ff_clb)
    }

    /// Column-kind tally of the span `[start, start + width)`.
    pub fn span_column_counts(&self, start: usize, width: usize) -> Result<Resources, FabricError> {
        let end = start + width;
        if end > self.columns.len() || width == 0 {
            return Err(FabricError::ColumnOutOfRange {
                index: end.saturating_sub(1),
                width: self.columns.len(),
            });
        }
        let mut counts = Resources::ZERO;
        for &c in &self.columns[start..end] {
            counts[c] += 1;
        }
        Ok(counts)
    }

    /// Validate that the 1-based row span `[row, row + height)` fits.
    ///
    /// `row + height - 1` is computed with checked arithmetic: adversarial
    /// inputs near `u32::MAX` report [`FabricError::RowOutOfRange`] instead
    /// of overflowing (a span that wide cannot fit any device anyway).
    pub fn check_row_span(&self, row: u32, height: u32) -> Result<(), FabricError> {
        let fits = row >= 1
            && height >= 1
            && row
                .checked_add(height - 1)
                .is_some_and(|last| last <= self.rows);
        if !fits {
            return Err(FabricError::RowOutOfRange {
                row,
                height,
                rows: self.rows,
            });
        }
        Ok(())
    }

    /// Order-sensitive 64-bit hash of the device's identity — name, row
    /// count, and the full column layout — computed by streaming the
    /// fields through a splitmix64 chain without allocating.
    ///
    /// Two devices compare equal iff they agree on exactly these fields,
    /// so equal devices always hash equal; the converse holds up to
    /// 64-bit collisions, which is why callers that intern devices by
    /// this hash (the planning engine) verify full equality behind it.
    /// [`crate::DeviceGeometry`] records its source device's layout hash
    /// at construction so downstream code can cheaply detect a
    /// geometry/device mix-up.
    pub fn layout_hash(&self) -> u64 {
        let mut h = splitmix64(0x6465_7669_6365_6864 ^ self.rows as u64);
        // Name bytes, 8 at a time (length folded in so "ab"+"c" differs
        // from "a"+"bc" even though chunks would align).
        h = splitmix64(h ^ self.name.len() as u64);
        for chunk in self.name.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = splitmix64(h ^ u64::from_le_bytes(word));
        }
        h = splitmix64(h ^ self.columns.len() as u64);
        for chunk in self.columns.chunks(8) {
            let mut word = [0u8; 8];
            for (i, &kind) in chunk.iter().enumerate() {
                word[i] = kind as u8;
            }
            h = splitmix64(h ^ u64::from_le_bytes(word));
        }
        h
    }

    /// Maximal runs of contiguous PRR-eligible columns (no IOB/CLK),
    /// yielded left to right as `start..end` column ranges.
    ///
    /// Every feasible window's column span lies inside exactly one of
    /// these runs — IOB/CLK columns are not supported inside PRRs
    /// (§III.A) — so the runs are the backbone of both the composition
    /// index ([`crate::DeviceGeometry`]) and runtime free-space tracking
    /// (the `layout` crate seeds its per-row free lists from them; the
    /// forbidden columns between runs are never free, which is what makes
    /// adjacency-merging on release safe).
    pub fn prr_free_runs(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let columns = &self.columns;
        let mut pos = 0usize;
        std::iter::from_fn(move || {
            while pos < columns.len() && !columns[pos].allowed_in_prr() {
                pos += 1;
            }
            if pos >= columns.len() {
                return None;
            }
            let start = pos;
            while pos < columns.len() && columns[pos].allowed_in_prr() {
                pos += 1;
            }
            Some(start..pos)
        })
    }

    /// All leftmost-first windows matching `req` (see [`WindowRequest`]).
    ///
    /// A window is a run of contiguous columns containing exactly the
    /// requested number of CLB/DSP/BRAM columns (in any order) and no
    /// IOB/CLK columns, over `req.height` contiguous rows starting at the
    /// bottom-most available row. Matches are yielded left to right by
    /// starting column.
    pub fn windows<'d>(&'d self, req: &'d WindowRequest) -> impl Iterator<Item = Window> + 'd {
        WindowIter::new(self, req)
    }

    /// Leftmost window matching `req` (the paper's Fig. 1 placement: first
    /// fit scanning from the bottom-left of the fabric), or `None`.
    pub fn find_window(&self, req: &WindowRequest) -> Option<Window> {
        self.windows(req).next()
    }

    /// Whether any window matching `req` exists.
    pub fn has_window(&self, req: &WindowRequest) -> bool {
        self.find_window(req).is_some()
    }
}

/// Sliding-window iterator over column spans matching a [`WindowRequest`].
struct WindowIter<'d> {
    device: &'d Device,
    req: &'d WindowRequest,
    start: usize,
    feasible_rows: bool,
}

impl<'d> WindowIter<'d> {
    fn new(device: &'d Device, req: &'d WindowRequest) -> Self {
        let feasible_rows = req.height >= 1 && req.height <= device.rows && req.width() >= 1;
        WindowIter {
            device,
            req,
            start: 0,
            feasible_rows,
        }
    }
}

impl Iterator for WindowIter<'_> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if !self.feasible_rows {
            return None;
        }
        let width = self.req.width() as usize;
        let cols = self.device.columns();
        while self.start + width <= cols.len() {
            let start = self.start;
            self.start += 1;
            let span = &cols[start..start + width];
            if span_matches(span, self.req) {
                return Some(Window {
                    start_col: start,
                    width: width as u32,
                    row: 1,
                    height: self.req.height,
                    columns: span.to_vec(),
                });
            }
        }
        None
    }
}

fn span_matches(span: &[ColumnKind], req: &WindowRequest) -> bool {
    let mut clb = 0u32;
    let mut dsp = 0u32;
    let mut bram = 0u32;
    for &c in span {
        match c {
            ResourceKind::Clb => clb += 1,
            ResourceKind::Dsp => dsp += 1,
            ResourceKind::Bram => bram += 1,
            // IOB/CLK columns are not supported inside PRRs (§III.A).
            ResourceKind::Iob | ResourceKind::Clk => return false,
        }
    }
    clb == req.clb_cols && dsp == req.dsp_cols && bram == req.bram_cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use ResourceKind::*;

    fn tiny() -> Device {
        // IOB C C B C D C C CLK C
        Device::from_spec(
            "tiny",
            Family::Virtex5,
            4,
            &[
                ColumnSpec::one(Iob),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Bram),
                ColumnSpec::one(Clb),
                ColumnSpec::one(Dsp),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Clk),
                ColumnSpec::one(Clb),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_empty() {
        assert_eq!(
            Device::new("x", Family::Virtex5, 0, vec![Clb]),
            Err(FabricError::EmptyFabric)
        );
        assert_eq!(
            Device::new("x", Family::Virtex5, 1, vec![]),
            Err(FabricError::EmptyFabric)
        );
    }

    #[test]
    fn column_counts_and_totals() {
        let d = tiny();
        let counts = d.column_counts();
        assert_eq!(counts.get(Clb), 6);
        assert_eq!(counts.get(Dsp), 1);
        assert_eq!(counts.get(Bram), 1);
        assert_eq!(counts.get(Iob), 1);
        assert_eq!(counts.get(Clk), 1);
        // 6 CLB cols * 4 rows * 20 CLB/col = 480; 1 DSP col * 4 * 8 = 32.
        let total = d.total_resources();
        assert_eq!(total.clb(), 480);
        assert_eq!(total.dsp(), 32);
        assert_eq!(total.bram(), 16);
        assert_eq!(d.total_luts(), 480 * 8);
        assert_eq!(d.total_ffs(), 480 * 8);
    }

    #[test]
    fn find_window_leftmost_first() {
        let d = tiny();
        // 1 CLB + 1 DSP: the only match is columns [5..7) = (Dsp at 5? no).
        // Layout indices: 0 Iob, 1 Clb, 2 Clb, 3 Bram, 4 Clb, 5 Dsp, 6 Clb,
        // 7 Clb, 8 Clk, 9 Clb.
        let req = WindowRequest::new(1, 1, 0, 2);
        let w = d.find_window(&req).expect("window exists");
        assert_eq!(w.start_col, 4);
        assert_eq!(w.columns, vec![Clb, Dsp]);
        assert_eq!(w.row, 1);
        assert_eq!(w.height, 2);
    }

    #[test]
    fn window_rejects_iob_clk() {
        let d = tiny();
        // 3 CLB contiguous exists only at [4..7)? that span is C D C -> no.
        // Actually no 3 contiguous CLB-only span exists (max run is 2).
        let req = WindowRequest::new(3, 0, 0, 1);
        assert!(d.find_window(&req).is_none());
    }

    #[test]
    fn window_any_order_inside_span() {
        let d = tiny();
        // 2 CLB + 1 BRAM: [1..4) = C C B matches.
        let req = WindowRequest::new(2, 0, 1, 1);
        let w = d.find_window(&req).unwrap();
        assert_eq!(w.start_col, 1);
    }

    #[test]
    fn window_height_must_fit_rows() {
        let d = tiny();
        let req = WindowRequest::new(1, 0, 0, 5); // device has 4 rows
        assert!(d.find_window(&req).is_none());
        let req = WindowRequest::new(1, 0, 0, 4);
        assert!(d.find_window(&req).is_some());
    }

    #[test]
    fn windows_iterates_all_matches() {
        let d = tiny();
        let req = WindowRequest::new(2, 0, 0, 1);
        let starts: Vec<usize> = d.windows(&req).map(|w| w.start_col).collect();
        assert_eq!(starts, vec![1, 6]);
    }

    #[test]
    fn span_counts_error_handling() {
        let d = tiny();
        assert!(d.span_column_counts(0, 10).is_ok());
        assert!(d.span_column_counts(5, 6).is_err());
        assert!(d.span_column_counts(0, 0).is_err());
    }

    #[test]
    fn row_span_check() {
        let d = tiny();
        assert!(d.check_row_span(1, 4).is_ok());
        assert!(d.check_row_span(2, 3).is_ok());
        assert!(d.check_row_span(2, 4).is_err());
        assert!(d.check_row_span(0, 1).is_err());
        assert!(d.check_row_span(1, 0).is_err());
    }

    #[test]
    fn row_span_check_rejects_overflowing_spans() {
        let d = tiny();
        // row + height - 1 would wrap in u32; must error, not panic/wrap.
        assert_eq!(
            d.check_row_span(u32::MAX, 2),
            Err(FabricError::RowOutOfRange {
                row: u32::MAX,
                height: 2,
                rows: 4,
            })
        );
        assert!(d.check_row_span(2, u32::MAX).is_err());
        assert!(d.check_row_span(u32::MAX, u32::MAX).is_err());
    }

    #[test]
    fn prr_free_runs_are_maximal_and_cover_all_allowed_columns() {
        let d = tiny();
        // Layout: 0 Iob, 1-2 Clb, 3 Bram, 4 Clb, 5 Dsp, 6-7 Clb, 8 Clk, 9 Clb.
        let runs: Vec<_> = d.prr_free_runs().collect();
        assert_eq!(runs, vec![1..8, 9..10]);
        for d in crate::database::all_devices() {
            let runs: Vec<_> = d.prr_free_runs().collect();
            // Disjoint, ordered, separated by at least one forbidden
            // column (maximality), non-empty, and bounded by forbidden
            // columns or the device edge on both sides.
            for w in runs.windows(2) {
                assert!(w[0].end < w[1].start, "{}: runs must not touch", d.name());
            }
            let mut covered = vec![false; d.width()];
            for r in &runs {
                assert!(!r.is_empty());
                assert!(r.start == 0 || !d.columns()[r.start - 1].allowed_in_prr());
                assert!(r.end == d.width() || !d.columns()[r.end].allowed_in_prr());
                for c in r.clone() {
                    assert!(d.columns()[c].allowed_in_prr());
                    covered[c] = true;
                }
            }
            for (c, &kind) in d.columns().iter().enumerate() {
                assert_eq!(covered[c], kind.allowed_in_prr(), "{} col {c}", d.name());
            }
        }
    }

    #[test]
    fn zero_width_request_matches_nothing() {
        let d = tiny();
        let req = WindowRequest::new(0, 0, 0, 1);
        assert!(d.find_window(&req).is_none());
    }
}
