//! Reconfigurable resource kinds and counted bundles of them.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Index, IndexMut, Sub};
use serde::{Deserialize, Serialize};

/// The reconfigurable resource classes distinguished by the cost models.
///
/// `Clb`, `Dsp` and `Bram` may appear inside a partially reconfigurable
/// region (PRR); `Iob` and `Clk` columns are *not* supported inside PRRs by
/// the Xilinx tools the paper targets (§III.A), so the placement search
/// treats them as blockers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Configurable logic block: a pair of slices, each with LUTs and FFs.
    Clb,
    /// Digital signal processing block (DSP48-style multiply-accumulate).
    Dsp,
    /// Block RAM (RAMB36-style dual-port memory).
    Bram,
    /// Input/output block column (never inside a PRR).
    Iob,
    /// Clock management column (never inside a PRR).
    Clk,
}

impl ResourceKind {
    /// All resource kinds, in canonical order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Clb,
        ResourceKind::Dsp,
        ResourceKind::Bram,
        ResourceKind::Iob,
        ResourceKind::Clk,
    ];

    /// Resource kinds that may appear inside a PRR.
    pub const RECONFIGURABLE: [ResourceKind; 3] =
        [ResourceKind::Clb, ResourceKind::Dsp, ResourceKind::Bram];

    /// Whether a column of this kind may be included in a PRR.
    #[inline]
    pub fn allowed_in_prr(self) -> bool {
        matches!(
            self,
            ResourceKind::Clb | ResourceKind::Dsp | ResourceKind::Bram
        )
    }

    /// Index of this kind in a `[CLB, DSP, BRAM]` composition tally, as
    /// used by the window-composition index in [`crate::DeviceGeometry`].
    ///
    /// Only PRR-allowed kinds have a slot; IOB/CLK columns never appear
    /// inside a window span, so asking for their slot panics.
    #[inline]
    pub fn prr_count_slot(self) -> usize {
        match self {
            ResourceKind::Clb => 0,
            ResourceKind::Dsp => 1,
            ResourceKind::Bram => 2,
            ResourceKind::Iob | ResourceKind::Clk => {
                panic!("IOB/CLK columns are not counted in PRR compositions")
            }
        }
    }

    /// Short uppercase mnemonic used in reports and table output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ResourceKind::Clb => "CLB",
            ResourceKind::Dsp => "DSP",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Iob => "IOB",
            ResourceKind::Clk => "CLK",
        }
    }

    fn index(self) -> usize {
        match self {
            ResourceKind::Clb => 0,
            ResourceKind::Dsp => 1,
            ResourceKind::Bram => 2,
            ResourceKind::Iob => 3,
            ResourceKind::Clk => 4,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A count of fabric resources per [`ResourceKind`].
///
/// Used both for "required" quantities (from a synthesis report) and
/// "available" quantities (from a PRR or a whole device).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resources {
    counts: [u64; 5],
}

impl Resources {
    /// An empty (all-zero) resource bundle.
    pub const ZERO: Resources = Resources { counts: [0; 5] };

    /// Bundle with only CLB/DSP/BRAM counts (the PRR-relevant kinds).
    pub fn new(clb: u64, dsp: u64, bram: u64) -> Self {
        let mut r = Resources::ZERO;
        r[ResourceKind::Clb] = clb;
        r[ResourceKind::Dsp] = dsp;
        r[ResourceKind::Bram] = bram;
        r
    }

    /// Count for one kind.
    #[inline]
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Set the count for one kind, returning `self` for chaining.
    pub fn with(mut self, kind: ResourceKind, count: u64) -> Self {
        self[kind] = count;
        self
    }

    /// CLB count.
    #[inline]
    pub fn clb(&self) -> u64 {
        self.get(ResourceKind::Clb)
    }

    /// DSP count.
    #[inline]
    pub fn dsp(&self) -> u64 {
        self.get(ResourceKind::Dsp)
    }

    /// BRAM count.
    #[inline]
    pub fn bram(&self) -> u64 {
        self.get(ResourceKind::Bram)
    }

    /// True if every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// True if `self` covers `need` in every kind (component-wise `>=`).
    pub fn covers(&self, need: &Resources) -> bool {
        ResourceKind::ALL
            .iter()
            .all(|&k| self.get(k) >= need.get(k))
    }

    /// Component-wise maximum; used when sizing one PRR for many PRMs
    /// ("the largest W_CLB, W_DSP and W_BRAM across all associated PRMs").
    pub fn max(&self, other: &Resources) -> Resources {
        let mut out = Resources::ZERO;
        for k in ResourceKind::ALL {
            out[k] = self.get(k).max(other.get(k));
        }
        out
    }

    /// Saturating component-wise subtraction.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        let mut out = Resources::ZERO;
        for k in ResourceKind::ALL {
            out[k] = self.get(k).saturating_sub(other.get(k));
        }
        out
    }

    /// Iterate `(kind, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ResourceKind, u64)> + '_ {
        ResourceKind::ALL
            .into_iter()
            .map(|k| (k, self.get(k)))
            .filter(|&(_, c)| c > 0)
    }

    /// Total count across all kinds (only meaningful for column tallies).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Index<ResourceKind> for Resources {
    type Output = u64;
    #[inline]
    fn index(&self, kind: ResourceKind) -> &u64 {
        &self.counts[kind.index()]
    }
}

impl IndexMut<ResourceKind> for Resources {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut u64 {
        &mut self.counts[kind.index()]
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        for k in ResourceKind::ALL {
            self[k] += rhs.get(k);
        }
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(&rhs)
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, c) in self.iter_nonzero() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{c} {k}")?;
            first = false;
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prr_allowed_kinds() {
        assert!(ResourceKind::Clb.allowed_in_prr());
        assert!(ResourceKind::Dsp.allowed_in_prr());
        assert!(ResourceKind::Bram.allowed_in_prr());
        assert!(!ResourceKind::Iob.allowed_in_prr());
        assert!(!ResourceKind::Clk.allowed_in_prr());
    }

    #[test]
    fn new_sets_only_prr_kinds() {
        let r = Resources::new(10, 2, 3);
        assert_eq!(r.clb(), 10);
        assert_eq!(r.dsp(), 2);
        assert_eq!(r.bram(), 3);
        assert_eq!(r.get(ResourceKind::Iob), 0);
        assert_eq!(r.get(ResourceKind::Clk), 0);
    }

    #[test]
    fn covers_is_componentwise() {
        let big = Resources::new(10, 2, 3);
        let small = Resources::new(10, 2, 0);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn max_is_componentwise() {
        let a = Resources::new(10, 0, 3);
        let b = Resources::new(4, 2, 3);
        let m = a.max(&b);
        assert_eq!(m, Resources::new(10, 2, 3));
    }

    #[test]
    fn arithmetic_round_trip() {
        let a = Resources::new(5, 1, 2);
        let b = Resources::new(3, 1, 0);
        assert_eq!((a + b) - b, a);
        assert_eq!(
            a.saturating_sub(&Resources::new(100, 100, 100)),
            Resources::ZERO
        );
    }

    #[test]
    fn sum_of_bundles() {
        let total: Resources = (0..4).map(|i| Resources::new(i, 1, 0)).sum();
        assert_eq!(total, Resources::new(6, 4, 0));
    }

    #[test]
    fn display_skips_zeros() {
        let r = Resources::new(2, 0, 1);
        assert_eq!(r.to_string(), "2 CLB 1 BRAM");
        assert_eq!(Resources::ZERO.to_string(), "(none)");
    }
}
