//! Device families and their fabric / configuration-plane constants.
//!
//! [`FamilyParams`] carries the Table II values (resources per column per
//! fabric row, LUTs/FFs per CLB) and [`FrameGeometry`] the Table IV values
//! (configuration frames per column kind, BRAM initialization frames, frame
//! size, bitstream framing word counts). Values for Virtex-5 are stated in
//! the paper body (§III.A); Virtex-4/-6 values come from the public Xilinx
//! configuration user guides (UG071, UG360) the paper cites; 7-series is an
//! extension using UG470. See `DESIGN.md` §5.

use crate::resource::ResourceKind;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Xilinx-style FPGA device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Virtex-4 (ISE-era, 16-bit-word devices use a separate `bytes_word`).
    Virtex4,
    /// Virtex-5 — primary evaluation family of the paper.
    Virtex5,
    /// Virtex-6 — secondary evaluation family of the paper.
    Virtex6,
    /// 7-series (Virtex-7 / Kintex-7 / Artix-7 / Zynq-7000) — portability
    /// extension beyond the paper's evaluation.
    Series7,
    /// Spartan-6 — the paper's explicit 16-bit-configuration-word
    /// portability case ("in other devices, such as Spartan-3/6 devices,
    /// words are 16-bit, therefore Bytes_word must be adjusted").
    Spartan6,
}

impl Family {
    /// All modeled families.
    pub const ALL: [Family; 5] = [
        Family::Virtex4,
        Family::Virtex5,
        Family::Virtex6,
        Family::Series7,
        Family::Spartan6,
    ];

    /// Family constants (Table II + Table IV).
    pub fn params(self) -> &'static FamilyParams {
        match self {
            Family::Virtex4 => &VIRTEX4,
            Family::Virtex5 => &VIRTEX5,
            Family::Virtex6 => &VIRTEX6,
            Family::Series7 => &SERIES7,
            Family::Spartan6 => &SPARTAN6,
        }
    }

    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Virtex4 => "Virtex-4",
            Family::Virtex5 => "Virtex-5",
            Family::Virtex6 => "Virtex-6",
            Family::Series7 => "7-series",
            Family::Spartan6 => "Spartan-6",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration-plane geometry: the Table III/IV parameters of the
/// bitstream-size cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameGeometry {
    /// `CF_CLB`: configuration frames per CLB column (per fabric row).
    pub cf_clb: u32,
    /// `CF_DSP`: configuration frames per DSP column.
    pub cf_dsp: u32,
    /// `CF_BRAM`: configuration (interconnect) frames per BRAM column.
    pub cf_bram: u32,
    /// Configuration frames per IOB column (never inside a PRR; used by the
    /// full-bitstream model and fabric accounting).
    pub cf_iob: u32,
    /// Configuration frames per clock column.
    pub cf_clk: u32,
    /// `DF_BRAM`: BRAM content-initialization data frames per BRAM column.
    pub df_bram: u32,
    /// `FR_size`: frame size in configuration words.
    pub fr_size: u32,
    /// `IW`: initial (synchronization/header) words of a partial bitstream.
    pub iw: u32,
    /// `FW`: final (CRC/desynchronization) words of a partial bitstream.
    pub fw: u32,
    /// `FAR_FDRI`: words spent setting FAR and the FDRI write header per
    /// PRR row (and per BRAM-initialization block).
    pub far_fdri: u32,
    /// `Bytes_word`: bytes per configuration word (4 for Virtex-class parts,
    /// 2 for Spartan-3/-6).
    pub bytes_word: u32,
}

impl FrameGeometry {
    /// Configuration frames per column of `kind` (per fabric row).
    pub fn frames_per_column(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Clb => self.cf_clb,
            ResourceKind::Dsp => self.cf_dsp,
            ResourceKind::Bram => self.cf_bram,
            ResourceKind::Iob => self.cf_iob,
            ResourceKind::Clk => self.cf_clk,
        }
    }
}

/// Fabric-architecture constants for one family: the parameters of Table I
/// that Table II instantiates, plus slice structure used by `synth` and
/// `parflow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyParams {
    /// The family these constants belong to.
    pub family: Family,
    /// `CLB_col`: CLBs in one CLB column per fabric row.
    pub clb_col: u32,
    /// `DSP_col`: DSPs in one DSP column per fabric row.
    pub dsp_col: u32,
    /// `BRAM_col`: BRAMs in one BRAM column per fabric row.
    pub bram_col: u32,
    /// `LUT_CLB`: LUTs per CLB.
    pub lut_clb: u32,
    /// `FF_CLB`: flip-flops per CLB.
    pub ff_clb: u32,
    /// Slices per CLB (2 for all Virtex-class families modeled here).
    pub slices_per_clb: u32,
    /// Configuration-plane geometry (Table IV).
    pub frames: FrameGeometry,
}

impl FamilyParams {
    /// LUTs per slice.
    pub fn luts_per_slice(&self) -> u32 {
        self.lut_clb / self.slices_per_clb
    }

    /// FFs per slice.
    pub fn ffs_per_slice(&self) -> u32 {
        self.ff_clb / self.slices_per_clb
    }

    /// Resources of `kind` contained in one column of that kind per fabric
    /// row (`*_col` in Table I). IOB/CLK columns carry no modeled resources.
    pub fn per_column(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Clb => self.clb_col,
            ResourceKind::Dsp => self.dsp_col,
            ResourceKind::Bram => self.bram_col,
            ResourceKind::Iob | ResourceKind::Clk => 0,
        }
    }
}

/// Virtex-4 constants (UG070/UG071). A fabric row is 16 CLBs tall; CLBs hold
/// 4 slices of 2 LUT4 + 2 FFs; RAMB16 spans 4 CLB rows, DSP48 spans 2.
pub static VIRTEX4: FamilyParams = FamilyParams {
    family: Family::Virtex4,
    clb_col: 16,
    dsp_col: 8,
    bram_col: 4,
    lut_clb: 8,
    ff_clb: 8,
    slices_per_clb: 4,
    frames: FrameGeometry {
        cf_clb: 22,
        cf_dsp: 21,
        cf_bram: 20,
        cf_iob: 30,
        cf_clk: 4,
        df_bram: 64,
        fr_size: 41,
        iw: 16,
        fw: 14,
        far_fdri: 5,
        bytes_word: 4,
    },
};

/// Virtex-5 constants, stated directly in the paper (§III.A): a fabric row
/// is 20 CLBs tall (8 DSPs, 4 BRAM36 per row); CLB = 2 slices × (4 LUT6 +
/// 4 FF); frame = 41 × 32-bit words; CLB/DSP/BRAM/IOB/CLK columns have
/// 36/28/30/54/4 frames; BRAM init = 128 data frames per column.
pub static VIRTEX5: FamilyParams = FamilyParams {
    family: Family::Virtex5,
    clb_col: 20,
    dsp_col: 8,
    bram_col: 4,
    lut_clb: 8,
    ff_clb: 8,
    slices_per_clb: 2,
    frames: FrameGeometry {
        cf_clb: 36,
        cf_dsp: 28,
        cf_bram: 30,
        cf_iob: 54,
        cf_clk: 4,
        df_bram: 128,
        fr_size: 41,
        iw: 16,
        fw: 14,
        far_fdri: 5,
        bytes_word: 4,
    },
};

/// Virtex-6 constants (UG360/UG364): a fabric row is 40 CLBs tall (16 DSPs,
/// 8 BRAM36 per row); CLB = 2 slices × (4 LUT6 + 8 FF); frame = 81 words.
pub static VIRTEX6: FamilyParams = FamilyParams {
    family: Family::Virtex6,
    clb_col: 40,
    dsp_col: 16,
    bram_col: 8,
    lut_clb: 8,
    ff_clb: 16,
    slices_per_clb: 2,
    frames: FrameGeometry {
        cf_clb: 36,
        cf_dsp: 28,
        cf_bram: 28,
        cf_iob: 44,
        cf_clk: 4,
        df_bram: 128,
        fr_size: 81,
        iw: 16,
        fw: 14,
        far_fdri: 5,
        bytes_word: 4,
    },
};

/// 7-series constants (UG470/UG474): a fabric row is 50 CLBs tall (20 DSPs,
/// 10 BRAM36 per row); CLB = 2 slices × (4 LUT6 + 8 FF); frame = 101 words.
pub static SERIES7: FamilyParams = FamilyParams {
    family: Family::Series7,
    clb_col: 50,
    dsp_col: 20,
    bram_col: 10,
    lut_clb: 8,
    ff_clb: 16,
    slices_per_clb: 2,
    frames: FrameGeometry {
        cf_clb: 36,
        cf_dsp: 28,
        cf_bram: 28,
        cf_iob: 42,
        cf_clk: 30,
        df_bram: 128,
        fr_size: 101,
        iw: 16,
        fw: 14,
        far_fdri: 5,
        bytes_word: 4,
    },
};

/// Spartan-6 constants (UG380/UG384): a fabric row is 16 CLBs tall
/// (4 DSP48A1s, 2 RAMB16s per row); CLB = 2 slices × (4 LUT6 + 8 FF);
/// frame = 65 **16-bit** words — the `Bytes_word = 2` case the paper
/// calls out for portability.
pub static SPARTAN6: FamilyParams = FamilyParams {
    family: Family::Spartan6,
    clb_col: 16,
    dsp_col: 4,
    bram_col: 2,
    lut_clb: 8,
    ff_clb: 16,
    slices_per_clb: 2,
    frames: FrameGeometry {
        cf_clb: 31,
        cf_dsp: 25,
        cf_bram: 24,
        cf_iob: 30,
        cf_clk: 4,
        df_bram: 64,
        fr_size: 65,
        iw: 16,
        fw: 14,
        far_fdri: 5,
        bytes_word: 2,
    },
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Bytes_word portability note: Spartan-class parts use
    /// 16-bit configuration words.
    #[test]
    fn spartan6_uses_16_bit_words() {
        let f = &Family::Spartan6.params().frames;
        assert_eq!(f.bytes_word, 2);
        assert_eq!(f.fr_size, 65);
        for fam in [
            Family::Virtex4,
            Family::Virtex5,
            Family::Virtex6,
            Family::Series7,
        ] {
            assert_eq!(fam.params().frames.bytes_word, 4, "{fam}");
        }
    }

    /// Table II of the paper, as pinned down by the paper body and the
    /// Table V/VI utilization algebra (DESIGN.md §5).
    #[test]
    fn table2_values() {
        let v4 = Family::Virtex4.params();
        assert_eq!(
            (v4.clb_col, v4.dsp_col, v4.bram_col, v4.lut_clb, v4.ff_clb),
            (16, 8, 4, 8, 8)
        );
        let v5 = Family::Virtex5.params();
        assert_eq!(
            (v5.clb_col, v5.dsp_col, v5.bram_col, v5.lut_clb, v5.ff_clb),
            (20, 8, 4, 8, 8)
        );
        let v6 = Family::Virtex6.params();
        assert_eq!(
            (v6.clb_col, v6.dsp_col, v6.bram_col, v6.lut_clb, v6.ff_clb),
            (40, 16, 8, 8, 16)
        );
    }

    /// Virtex-5 frame facts stated verbatim in §III.A of the paper.
    #[test]
    fn virtex5_frame_facts_from_paper() {
        let f = &Family::Virtex5.params().frames;
        assert_eq!(f.fr_size, 41);
        assert_eq!(f.cf_clb, 36);
        assert_eq!(f.cf_dsp, 28);
        assert_eq!(f.cf_bram, 30);
        assert_eq!(f.cf_iob, 54);
        assert_eq!(f.cf_clk, 4);
        assert_eq!(f.df_bram, 128);
        assert_eq!(f.bytes_word, 4);
    }

    #[test]
    fn slice_structure_divides_evenly() {
        for fam in Family::ALL {
            let p = fam.params();
            assert_eq!(p.luts_per_slice() * p.slices_per_clb, p.lut_clb, "{fam}");
            assert_eq!(p.ffs_per_slice() * p.slices_per_clb, p.ff_clb, "{fam}");
        }
    }

    #[test]
    fn per_column_matches_named_fields() {
        for fam in Family::ALL {
            let p = fam.params();
            assert_eq!(p.per_column(ResourceKind::Clb), p.clb_col);
            assert_eq!(p.per_column(ResourceKind::Dsp), p.dsp_col);
            assert_eq!(p.per_column(ResourceKind::Bram), p.bram_col);
            assert_eq!(p.per_column(ResourceKind::Iob), 0);
            assert_eq!(p.per_column(ResourceKind::Clk), 0);
        }
    }

    #[test]
    fn frames_per_column_matches_named_fields() {
        for fam in Family::ALL {
            let f = &fam.params().frames;
            assert_eq!(f.frames_per_column(ResourceKind::Clb), f.cf_clb);
            assert_eq!(f.frames_per_column(ResourceKind::Dsp), f.cf_dsp);
            assert_eq!(f.frames_per_column(ResourceKind::Bram), f.cf_bram);
            assert_eq!(f.frames_per_column(ResourceKind::Iob), f.cf_iob);
            assert_eq!(f.frames_per_column(ResourceKind::Clk), f.cf_clk);
        }
    }
}
