//! Site-level view of a device, used by the simulated place-and-route flow.
//!
//! Columns contain vertically stacked *sites* (one CLB, DSP or BRAM each).
//! A column of kind `k` holds `per_column(k) * rows` sites; site `y` (0-based
//! from the fabric bottom) lies in fabric row `y / per_column(k) + 1`.

use crate::device::Device;
use crate::resource::ResourceKind;
use crate::window::Window;
use serde::{Deserialize, Serialize};

/// One placeable site on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Column index (0-based).
    pub col: u32,
    /// Vertical site index within the column (0-based from fabric bottom).
    pub y: u32,
    /// Site kind (Clb, Dsp or Bram).
    pub kind: ResourceKind,
}

impl Site {
    /// Squared Euclidean distance in (column, normalized-row) space; the
    /// placer's wirelength proxy.
    pub fn dist2(&self, other: &Site) -> u64 {
        let dc = i64::from(self.col) - i64::from(other.col);
        let dy = i64::from(self.y) - i64::from(other.y);
        (dc * dc + dy * dy) as u64
    }
}

/// Site-level grid over a [`Device`].
#[derive(Debug, Clone)]
pub struct SiteGrid<'d> {
    device: &'d Device,
}

impl<'d> SiteGrid<'d> {
    /// View `device` at site granularity.
    pub fn new(device: &'d Device) -> Self {
        SiteGrid { device }
    }

    /// The underlying device.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// Sites in one full-height column.
    pub fn sites_in_column(&self, col: usize) -> u32 {
        let kind = self.device.columns()[col];
        self.device.params().per_column(kind) * self.device.rows()
    }

    /// Fabric row (1-based) containing site `y` of a column of `kind`.
    pub fn row_of(&self, kind: ResourceKind, y: u32) -> u32 {
        let per = self.device.params().per_column(kind).max(1);
        y / per + 1
    }

    /// All sites of reconfigurable kinds inside a placed window.
    pub fn sites_in_window(&self, window: &Window) -> Vec<Site> {
        let params = self.device.params();
        let mut sites = Vec::new();
        for (offset, &kind) in window.columns.iter().enumerate() {
            if !kind.allowed_in_prr() {
                continue;
            }
            let per = params.per_column(kind);
            let y0 = (window.row - 1) * per;
            let y1 = window.top_row() * per;
            for y in y0..y1 {
                sites.push(Site {
                    col: (window.start_col + offset) as u32,
                    y,
                    kind,
                });
            }
        }
        sites
    }

    /// Total sites of `kind` in the device.
    pub fn total_sites(&self, kind: ResourceKind) -> u64 {
        self.device.columns().iter().filter(|&&c| c == kind).count() as u64
            * u64::from(self.device.params().per_column(kind))
            * u64::from(self.device.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use crate::family::Family;
    use ResourceKind::*;

    fn dev() -> Device {
        Device::from_spec(
            "g",
            Family::Virtex5,
            2,
            &[
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Dsp),
                ColumnSpec::one(Bram),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_site_counts() {
        let d = dev();
        let g = SiteGrid::new(&d);
        assert_eq!(g.sites_in_column(0), 40); // 20 CLB/row * 2 rows
        assert_eq!(g.sites_in_column(2), 16); // 8 DSP/row * 2 rows
        assert_eq!(g.sites_in_column(3), 8); // 4 BRAM/row * 2 rows
    }

    #[test]
    fn row_mapping() {
        let d = dev();
        let g = SiteGrid::new(&d);
        assert_eq!(g.row_of(Clb, 0), 1);
        assert_eq!(g.row_of(Clb, 19), 1);
        assert_eq!(g.row_of(Clb, 20), 2);
        assert_eq!(g.row_of(Dsp, 7), 1);
        assert_eq!(g.row_of(Dsp, 8), 2);
    }

    #[test]
    fn window_sites_cover_rows_and_kinds() {
        let d = dev();
        let g = SiteGrid::new(&d);
        let w = Window {
            start_col: 1,
            width: 2,
            row: 2,
            height: 1,
            columns: vec![Clb, Dsp],
        };
        let sites = g.sites_in_window(&w);
        let clb_sites = sites.iter().filter(|s| s.kind == Clb).count();
        let dsp_sites = sites.iter().filter(|s| s.kind == Dsp).count();
        assert_eq!(clb_sites, 20);
        assert_eq!(dsp_sites, 8);
        // All in fabric row 2.
        assert!(sites.iter().all(|s| g.row_of(s.kind, s.y) == 2));
        // Columns restricted to the window.
        assert!(sites.iter().all(|s| s.col == 1 || s.col == 2));
    }

    #[test]
    fn totals() {
        let d = dev();
        let g = SiteGrid::new(&d);
        assert_eq!(g.total_sites(Clb), 80);
        assert_eq!(g.total_sites(Dsp), 16);
        assert_eq!(g.total_sites(Bram), 8);
    }

    #[test]
    fn dist2_symmetric() {
        let a = Site {
            col: 0,
            y: 0,
            kind: Clb,
        };
        let b = Site {
            col: 3,
            y: 4,
            kind: Clb,
        };
        assert_eq!(a.dist2(&b), 25);
        assert_eq!(b.dist2(&a), 25);
    }
}
