//! The seed window-search geometry, frozen verbatim as the equivalence
//! oracle and benchmark baseline for [`crate::DeviceGeometry`].
//!
//! This is the exact pre-index implementation: column-kind prefix sums
//! plus a **mutex-guarded** composition memo. A cold composition probe
//! rescans every candidate start column (O(width²) per probe via the
//! prefix sums), and every probe — hit or miss — serializes through the
//! memo lock, which is what capped multi-thread sweep scaling. The live
//! [`DeviceGeometry`](crate::DeviceGeometry) answers the same queries
//! from a read-only composition index built once at construction;
//! `crates/fabric/tests/window_props.rs` asserts the two (and the raw
//! [`Device::find_window`] rescan) agree on every composition of every
//! database device and on random synthetic fabrics, and
//! `crates/bench/benches/window_index.rs` measures the speedup
//! (`results/BENCH_window.json`).

use crate::device::Device;
use crate::resource::ResourceKind;
use crate::window::{Window, WindowRequest};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-kind span counts: `[CLB, DSP, BRAM, blocked]`, where "blocked"
/// counts IOB/CLK columns (never allowed inside a PRR).
type PrefixRow = [u32; 4];

/// The seed geometry: prefix sums plus a mutexed composition memo.
#[derive(Debug)]
pub struct MemoGeometry {
    /// `prefix[i]` = counts over `columns[..i]`; length `width + 1`.
    prefix: Vec<PrefixRow>,
    rows: u32,
    width: usize,
    /// `(W_CLB, W_DSP, W_BRAM)` → leftmost matching start column.
    memo: Mutex<HashMap<(u32, u32, u32), Option<usize>>>,
    queries: AtomicU64,
    memo_hits: AtomicU64,
}

impl MemoGeometry {
    /// Derive the geometry of `device` (one O(columns) pass).
    pub fn new(device: &Device) -> Self {
        let mut prefix = Vec::with_capacity(device.width() + 1);
        let mut acc: PrefixRow = [0; 4];
        prefix.push(acc);
        for &kind in device.columns() {
            match kind {
                ResourceKind::Clb => acc[0] += 1,
                ResourceKind::Dsp => acc[1] += 1,
                ResourceKind::Bram => acc[2] += 1,
                ResourceKind::Iob | ResourceKind::Clk => acc[3] += 1,
            }
            prefix.push(acc);
        }
        MemoGeometry {
            prefix,
            rows: device.rows(),
            width: device.width(),
            memo: Mutex::new(HashMap::new()),
            queries: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
        }
    }

    fn span_counts(&self, start: usize, width: usize) -> PrefixRow {
        let lo = self.prefix[start];
        let hi = self.prefix[start + width];
        [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2], hi[3] - lo[3]]
    }

    /// Leftmost start column of a span containing exactly `clb`/`dsp`/
    /// `bram` columns of each kind and no IOB/CLK columns, or `None`.
    /// Memoized: the answer is independent of the requested height.
    pub fn leftmost_start(&self, clb: u32, dsp: u32, bram: u32) -> Option<usize> {
        let key = (clb, dsp, bram);
        {
            let memo = self.memo.lock();
            if let Some(&hit) = memo.get(&key) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        let width = (clb + dsp + bram) as usize;
        let mut found = None;
        if width >= 1 && width <= self.width {
            for start in 0..=(self.width - width) {
                let [c, d, b, blocked] = self.span_counts(start, width);
                if blocked == 0 && c == clb && d == dsp && b == bram {
                    found = Some(start);
                    break;
                }
            }
        }
        self.memo.lock().insert(key, found);
        found
    }

    /// Leftmost window matching `req` on `device`, behaviorally identical
    /// to [`Device::find_window`] but answered from the memoized scan.
    ///
    /// `device` must be the device this geometry was derived from (checked
    /// in debug builds by column count).
    pub fn find_window(&self, device: &Device, req: &WindowRequest) -> Option<Window> {
        debug_assert_eq!(device.width(), self.width, "geometry/device mismatch");
        self.queries.fetch_add(1, Ordering::Relaxed);
        if req.height < 1 || req.height > self.rows || req.width() < 1 {
            return None;
        }
        let start = self.leftmost_start(req.clb_cols, req.dsp_cols, req.bram_cols)?;
        let width = req.width() as usize;
        Some(Window {
            start_col: start,
            width: req.width(),
            row: 1,
            height: req.height,
            columns: device.columns()[start..start + width].to_vec(),
        })
    }

    /// Total `find_window` queries answered.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries answered from the composition memo.
    pub fn memo_hit_count(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use crate::family::Family;
    use ResourceKind::*;

    fn tiny() -> Device {
        Device::from_spec(
            "tiny",
            Family::Virtex5,
            4,
            &[
                ColumnSpec::one(Iob),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Bram),
                ColumnSpec::one(Clb),
                ColumnSpec::one(Dsp),
                ColumnSpec::run(Clb, 2),
                ColumnSpec::one(Clk),
                ColumnSpec::one(Clb),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_device_find_window_on_tiny() {
        let d = tiny();
        let geo = MemoGeometry::new(&d);
        for clb in 0..4 {
            for dsp in 0..2 {
                for bram in 0..2 {
                    for h in 0..6 {
                        let req = WindowRequest::new(clb, dsp, bram, h);
                        assert_eq!(
                            geo.find_window(&d, &req),
                            d.find_window(&req),
                            "req {req:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memo_hits_accumulate() {
        let d = tiny();
        let geo = MemoGeometry::new(&d);
        let req = WindowRequest::new(2, 0, 1, 1);
        // Different heights share one composition memo entry.
        let w1 = geo.find_window(&d, &req);
        let w4 = geo.find_window(&d, &WindowRequest::new(2, 0, 1, 4));
        assert_eq!(w1.unwrap().start_col, w4.unwrap().start_col);
        assert_eq!(geo.query_count(), 2);
        assert_eq!(geo.memo_hit_count(), 1);
    }
}
