//! Device database.
//!
//! The two parts evaluated in the paper (Virtex-5 LX110T, Virtex-6 LX75T)
//! have hand-written column layouts that preserve every layout fact the
//! paper states or implies: the LX110T has 8 fabric rows and exactly one
//! DSP column (forcing Eq. 4), the LX75T has 3 rows, and both contain the
//! contiguous column windows that the paper's Table V PRRs occupy. The
//! remaining parts per family use a deterministic layout generator tuned to
//! the public resource counts of the real parts; they exercise the models'
//! portability claims. See `DESIGN.md` §2.

use crate::column::{ColumnKind, ColumnSpec};
use crate::device::Device;
use crate::error::FabricError;
use crate::family::Family;
use crate::resource::ResourceKind::{Bram, Clb, Clk, Dsp, Iob};

/// Look up a device by part name (case-insensitive).
pub fn device_by_name(name: &str) -> Result<Device, FabricError> {
    let lower = name.to_ascii_lowercase();
    all_devices()
        .into_iter()
        .find(|d| d.name() == lower)
        .ok_or_else(|| FabricError::UnknownDevice(name.to_string()))
}

/// All devices in the database.
pub fn all_devices() -> Vec<Device> {
    vec![
        // Paper evaluation parts.
        xc5vlx110t(),
        xc6vlx75t(),
        // Additional Virtex-5 parts.
        generated("xc5vlx50t", Family::Virtex5, 6, 30, 1, 3),
        generated("xc5vsx95t", Family::Virtex5, 8, 46, 10, 8),
        generated("xc5vfx70t", Family::Virtex5, 8, 35, 2, 5),
        // Additional Virtex-6 part.
        generated("xc6vlx240t", Family::Virtex6, 6, 78, 8, 8),
        // Virtex-4 parts.
        generated("xc4vlx60", Family::Virtex4, 8, 52, 1, 5),
        generated("xc4vsx35", Family::Virtex4, 6, 40, 4, 8),
        // Spartan-6 parts (16-bit configuration words).
        generated("xc6slx45", Family::Spartan6, 4, 53, 4, 7),
        generated("xc6slx16", Family::Spartan6, 2, 36, 4, 8),
        // 7-series portability parts.
        generated("xc7a100t", Family::Series7, 4, 40, 3, 3),
        generated("xc7k325t", Family::Series7, 7, 72, 6, 6),
        generated("xc7z020", Family::Series7, 3, 44, 4, 4),
    ]
}

/// Virtex-5 LX110T: 8 fabric rows; 54 CLB columns (8640 CLBs = 17 280
/// slices, matching the real part), **one** DSP column (64 DSP48Es,
/// matching the real part and triggering the paper's Eq. 4 special case),
/// 5 BRAM columns, IOB columns at the edges, one center clock column.
pub fn xc5vlx110t() -> Device {
    Device::from_spec(
        "xc5vlx110t",
        Family::Virtex5,
        8,
        &[
            ColumnSpec::one(Iob),
            ColumnSpec::run(Clb, 6),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 8),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 8),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 2),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 5),
            ColumnSpec::one(Clk),
            ColumnSpec::run(Clb, 4),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 8),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 13),
            ColumnSpec::one(Iob),
        ],
    )
    .expect("static layout is valid")
}

/// Virtex-6 LX75T: 3 fabric rows; 48 CLB columns (5760 CLBs = 11 520
/// slices, close to the real part's 11 640), 6 DSP columns (288 DSP48E1s,
/// matching the real part), 6 BRAM columns.
pub fn xc6vlx75t() -> Device {
    Device::from_spec(
        "xc6vlx75t",
        Family::Virtex6,
        3,
        &[
            ColumnSpec::one(Iob),
            ColumnSpec::run(Clb, 4),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 5),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 3),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 5),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 4),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 3),
            ColumnSpec::one(Bram),
            ColumnSpec::one(Clk),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 3),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 4),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 5),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 3),
            ColumnSpec::one(Dsp),
            ColumnSpec::run(Clb, 5),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 4),
            ColumnSpec::one(Iob),
        ],
    )
    .expect("static layout is valid")
}

/// Deterministic layout generator for non-paper parts: distributes `dsp`
/// and `bram` special columns (alternating, BRAM first) evenly between
/// `clb` CLB columns, with IOB columns at both edges and a clock column in
/// the middle.
fn generated(name: &str, family: Family, rows: u32, clb: u32, dsp: u32, bram: u32) -> Device {
    let mut specials: Vec<ColumnKind> = Vec::with_capacity((dsp + bram) as usize);
    let (mut d, mut b) = (dsp, bram);
    while d > 0 || b > 0 {
        if b > 0 {
            specials.push(Bram);
            b -= 1;
        }
        if d > 0 {
            specials.push(Dsp);
            d -= 1;
        }
    }

    // clb columns split into (specials + 1) runs, remainder spread left.
    let runs = specials.len() as u32 + 1;
    let base = clb / runs;
    let extra = clb % runs;

    let mut cols: Vec<ColumnKind> = vec![Iob];
    for (i, chunk_kind) in specials.iter().enumerate() {
        let run = base + u32::from((i as u32) < extra);
        cols.extend(std::iter::repeat_n(Clb, run as usize));
        cols.push(*chunk_kind);
    }
    let last_run = base + u32::from(runs - 1 < extra);
    cols.extend(std::iter::repeat_n(Clb, last_run as usize));
    cols.push(Iob);

    // Insert the clock column at the middle of the fabric.
    let mid = cols.len() / 2;
    cols.insert(mid, Clk);

    Device::new(name, family, rows, cols).expect("generated layout is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;
    use crate::window::WindowRequest;

    #[test]
    fn lookup_is_case_insensitive_and_errors_on_unknown() {
        assert_eq!(device_by_name("XC5VLX110T").unwrap().name(), "xc5vlx110t");
        assert!(device_by_name("xc99vnope").is_err());
    }

    #[test]
    fn lx110t_matches_paper_facts() {
        let d = xc5vlx110t();
        assert_eq!(d.rows(), 8, "paper: the Virtex-5 LX110T has 8 rows");
        assert_eq!(d.dsp_column_count(), 1, "paper: only one DSP column");
        let total = d.total_resources();
        assert_eq!(total.clb(), 8640, "17,280 slices = 8640 CLBs (real part)");
        assert_eq!(total.dsp(), 64, "64 DSP48Es (real part)");
        assert_eq!(total.bram(), 160);
    }

    #[test]
    fn lx75t_matches_paper_facts() {
        let d = xc6vlx75t();
        assert_eq!(d.rows(), 3, "paper: the Virtex-6 LX75T has 3 rows");
        let total = d.total_resources();
        assert_eq!(total.clb(), 5760);
        assert_eq!(total.dsp(), 288, "288 DSP48E1s (real part)");
        assert_eq!(total.bram(), 144);
    }

    /// The Table V PRR footprints must be physically placeable, which is
    /// what the paper's successful AREA_GROUP place-and-route demonstrates.
    #[test]
    fn paper_prr_windows_exist() {
        let v5 = xc5vlx110t();
        // FIR/V5: H=5, W_CLB=2, W_DSP=1.
        assert!(v5.has_window(&WindowRequest::new(2, 1, 0, 5)));
        // MIPS/V5: H=1, W_CLB=17, W_DSP=1, W_BRAM=2.
        assert!(v5.has_window(&WindowRequest::new(17, 1, 2, 1)));
        // SDRAM/V5: H=1, W_CLB=3.
        assert!(v5.has_window(&WindowRequest::new(3, 0, 0, 1)));

        let v6 = xc6vlx75t();
        // FIR/V6: H=1, W_CLB=5, W_DSP=2.
        assert!(v6.has_window(&WindowRequest::new(5, 2, 0, 1)));
        // MIPS/V6: H=1, W_CLB=11, W_DSP=1, W_BRAM=1.
        assert!(v6.has_window(&WindowRequest::new(11, 1, 1, 1)));
        // SDRAM/V6: H=1, W_CLB=2.
        assert!(v6.has_window(&WindowRequest::new(2, 0, 0, 1)));
    }

    #[test]
    fn generated_layouts_have_exact_column_counts() {
        for d in all_devices() {
            let counts = d.column_counts();
            assert!(counts.get(ResourceKind::Clb) > 0, "{}", d.name());
            assert_eq!(counts.get(ResourceKind::Iob), 2, "{}", d.name());
            assert_eq!(counts.get(ResourceKind::Clk), 1, "{}", d.name());
        }
        let d = device_by_name("xc5vsx95t").unwrap();
        let counts = d.column_counts();
        assert_eq!(counts.get(ResourceKind::Clb), 46);
        assert_eq!(counts.get(ResourceKind::Dsp), 10);
        assert_eq!(counts.get(ResourceKind::Bram), 8);
    }

    #[test]
    fn all_devices_have_unique_lowercase_names() {
        let devices = all_devices();
        let mut names: Vec<&str> = devices.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate device names");
        assert!(names.iter().all(|n| *n == n.to_ascii_lowercase()));
    }

    #[test]
    fn single_dsp_column_parts() {
        // Eq. 4 applies on these parts.
        assert_eq!(device_by_name("xc5vlx110t").unwrap().dsp_column_count(), 1);
        assert_eq!(device_by_name("xc5vlx50t").unwrap().dsp_column_count(), 1);
        assert_eq!(device_by_name("xc4vlx60").unwrap().dsp_column_count(), 1);
        // ... and not on these.
        assert!(device_by_name("xc6vlx75t").unwrap().dsp_column_count() > 1);
        assert!(device_by_name("xc5vsx95t").unwrap().dsp_column_count() > 1);
    }
}
