//! Fabric columns: the horizontal unit of the two-dimensional PR layout.

use crate::resource::ResourceKind;
use serde::{Deserialize, Serialize};

/// The kind of one fabric column. In the Virtex-5-and-newer layout modeled
/// here, every column spans the full device height and contributes a fixed
/// number of resources and configuration frames *per fabric row*.
pub type ColumnKind = ResourceKind;

/// A compact builder for device column layouts.
///
/// Device layouts in [`crate::database`] are long interleavings of CLB
/// columns with sparse DSP/BRAM/IOB/CLK columns; `ColumnSpec` lets them be
/// written as run-length segments and expanded once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Column kind for this run.
    pub kind: ColumnKind,
    /// Number of consecutive columns of that kind.
    pub run: u32,
}

impl ColumnSpec {
    /// A run of `run` consecutive columns of `kind`.
    pub const fn run(kind: ColumnKind, run: u32) -> Self {
        ColumnSpec { kind, run }
    }

    /// A single column of `kind`.
    pub const fn one(kind: ColumnKind) -> Self {
        ColumnSpec { kind, run: 1 }
    }
}

/// Expand run-length segments into a flat column list.
pub fn expand(spec: &[ColumnSpec]) -> Vec<ColumnKind> {
    let total: usize = spec.iter().map(|s| s.run as usize).sum();
    let mut cols = Vec::with_capacity(total);
    for s in spec {
        cols.extend(std::iter::repeat_n(s.kind, s.run as usize));
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use ResourceKind::*;

    #[test]
    fn expand_preserves_order_and_counts() {
        let cols = expand(&[
            ColumnSpec::one(Iob),
            ColumnSpec::run(Clb, 3),
            ColumnSpec::one(Bram),
            ColumnSpec::run(Clb, 2),
        ]);
        assert_eq!(cols, vec![Iob, Clb, Clb, Clb, Bram, Clb, Clb]);
    }

    #[test]
    fn expand_empty_spec() {
        assert!(expand(&[]).is_empty());
    }
}
