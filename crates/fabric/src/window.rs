//! Column windows: candidate physical footprints for a PRR.

use crate::column::ColumnKind;
use crate::family::FamilyParams;
use crate::resource::{ResourceKind, Resources};
use serde::{Deserialize, Serialize};

/// A request for a PRR footprint: how many columns of each reconfigurable
/// kind must appear in a contiguous span, over how many fabric rows.
///
/// This is the physical-feasibility query of the paper's Fig. 1 flow: given
/// `W_CLB`, `W_DSP`, `W_BRAM` and `H`, is there a place on the device where
/// those columns are contiguous (in any order, with no IOB/CLK columns)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowRequest {
    /// `W_CLB`: CLB columns required.
    pub clb_cols: u32,
    /// `W_DSP`: DSP columns required.
    pub dsp_cols: u32,
    /// `W_BRAM`: BRAM columns required.
    pub bram_cols: u32,
    /// `H`: fabric rows required.
    pub height: u32,
}

impl WindowRequest {
    /// New request.
    pub fn new(clb_cols: u32, dsp_cols: u32, bram_cols: u32, height: u32) -> Self {
        WindowRequest {
            clb_cols,
            dsp_cols,
            bram_cols,
            height,
        }
    }

    /// Total window width `W = W_CLB + W_DSP + W_BRAM` (paper Eq. 6).
    pub fn width(&self) -> u32 {
        self.clb_cols + self.dsp_cols + self.bram_cols
    }

    /// `PRR_size = H x W` (paper Eq. 7).
    pub fn prr_size(&self) -> u64 {
        u64::from(self.height) * u64::from(self.width())
    }

    /// Column counts as a [`Resources`] bundle (columns, not resources).
    pub fn column_counts(&self) -> Resources {
        Resources::new(
            u64::from(self.clb_cols),
            u64::from(self.dsp_cols),
            u64::from(self.bram_cols),
        )
    }

    /// Resources available in a window satisfying this request, per paper
    /// Eqs. (8), (11), (12): `avail = H * W_kind * kind_col`.
    pub fn available(&self, params: &FamilyParams) -> Resources {
        let h = u64::from(self.height);
        Resources::new(
            h * u64::from(self.clb_cols) * u64::from(params.clb_col),
            h * u64::from(self.dsp_cols) * u64::from(params.dsp_col),
            h * u64::from(self.bram_cols) * u64::from(params.bram_col),
        )
    }
}

/// A concrete placed window on a device: the result of a successful search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Leftmost column index (0-based) of the window.
    pub start_col: usize,
    /// Width in columns.
    pub width: u32,
    /// Bottom row of the window (1-based, paper convention).
    pub row: u32,
    /// Height in fabric rows.
    pub height: u32,
    /// The column kinds inside the window, left to right.
    pub columns: Vec<ColumnKind>,
}

impl Window {
    /// Column-kind tally of the window.
    pub fn column_counts(&self) -> Resources {
        let mut counts = Resources::ZERO;
        for &c in &self.columns {
            counts[c] += 1;
        }
        counts
    }

    /// Resources available inside the window for `params`.
    pub fn available(&self, params: &FamilyParams) -> Resources {
        let counts = self.column_counts();
        let h = u64::from(self.height);
        let mut avail = Resources::ZERO;
        for k in ResourceKind::RECONFIGURABLE {
            avail[k] = h * counts.get(k) * u64::from(params.per_column(k));
        }
        avail
    }

    /// Exclusive end column index.
    pub fn end_col(&self) -> usize {
        self.start_col + self.width as usize
    }

    /// Top row (inclusive, 1-based): `row + H - 1`.
    pub fn top_row(&self) -> u32 {
        self.row + self.height - 1
    }

    /// Whether this window overlaps `other` (both columns and rows overlap).
    pub fn overlaps(&self, other: &Window) -> bool {
        let cols = self.start_col < other.end_col() && other.start_col < self.end_col();
        let rows = self.row <= other.top_row() && other.row <= self.top_row();
        cols && rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Family;
    use ResourceKind::*;

    #[test]
    fn width_and_size() {
        let req = WindowRequest::new(17, 1, 2, 1);
        assert_eq!(req.width(), 20);
        assert_eq!(req.prr_size(), 20);
        let req = WindowRequest::new(2, 1, 0, 5);
        assert_eq!(req.width(), 3);
        assert_eq!(req.prr_size(), 15);
    }

    #[test]
    fn available_matches_paper_fir_v5() {
        // FIR on Virtex-5: H=5, W_CLB=2, W_DSP=1 => 200 CLBs, 40 DSPs.
        let req = WindowRequest::new(2, 1, 0, 5);
        let avail = req.available(Family::Virtex5.params());
        assert_eq!(avail.clb(), 200);
        assert_eq!(avail.dsp(), 40);
        assert_eq!(avail.bram(), 0);
    }

    #[test]
    fn window_available_matches_request_available() {
        let req = WindowRequest::new(2, 1, 1, 3);
        let w = Window {
            start_col: 4,
            width: 4,
            row: 1,
            height: 3,
            columns: vec![Clb, Dsp, Clb, Bram],
        };
        assert_eq!(
            w.available(Family::Virtex6.params()),
            req.available(Family::Virtex6.params())
        );
    }

    #[test]
    fn overlap_geometry() {
        let a = Window {
            start_col: 0,
            width: 3,
            row: 1,
            height: 2,
            columns: vec![Clb; 3],
        };
        let b = Window {
            start_col: 2,
            width: 2,
            row: 2,
            height: 1,
            columns: vec![Clb; 2],
        };
        let c = Window {
            start_col: 3,
            width: 2,
            row: 1,
            height: 2,
            columns: vec![Clb; 2],
        };
        let d = Window {
            start_col: 0,
            width: 3,
            row: 3,
            height: 1,
            columns: vec![Clb; 3],
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c)); // columns disjoint
        assert!(!a.overlaps(&d)); // rows disjoint
    }

    #[test]
    fn top_row_convention() {
        let w = Window {
            start_col: 0,
            width: 1,
            row: 2,
            height: 3,
            columns: vec![Clb],
        };
        assert_eq!(w.top_row(), 4);
    }
}
