//! Serde round-trips for the public fabric types (device descriptions are
//! meant to be shareable as JSON).

use fabric::{all_devices, Device, Family, Resources, WindowRequest};

#[test]
fn every_database_device_round_trips_through_json() {
    for d in all_devices() {
        let json = serde_json::to_string(&d).unwrap();
        let back: Device = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d, "{}", d.name());
        assert_eq!(back.total_resources(), d.total_resources());
    }
}

#[test]
fn family_params_serialize_with_stable_field_names() {
    let json = serde_json::to_value(Family::Virtex5.params()).unwrap();
    assert_eq!(json["clb_col"], 20);
    assert_eq!(json["frames"]["fr_size"], 41);
    assert_eq!(json["frames"]["bytes_word"], 4);
}

#[test]
fn requests_and_resources_round_trip() {
    let req = WindowRequest::new(17, 1, 2, 1);
    let back: WindowRequest = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
    assert_eq!(back, req);

    let r = Resources::new(163, 32, 0);
    let back: Resources = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
    assert_eq!(back, r);
}
