//! Property tests for the fabric window search (the physical-feasibility
//! primitive under the Fig. 1 flow), plus the exhaustive equivalence
//! suite for the composition index: [`fabric::DeviceGeometry`] must
//! agree — start column, window bytes, everything — with both the frozen
//! seed implementation ([`fabric::reference::MemoGeometry`]) and the
//! uncached linear scan ([`Device::find_window`]) on every achievable
//! composition of every database device and on random synthetic fabrics.

use fabric::reference::MemoGeometry;
use fabric::{ColumnKind, Device, DeviceGeometry, Family, ResourceKind, WindowRequest};
use proptest::prelude::*;

fn arb_columns() -> impl Strategy<Value = Vec<ColumnKind>> {
    proptest::collection::vec(
        prop_oneof![
            6 => Just(ResourceKind::Clb),
            1 => Just(ResourceKind::Dsp),
            1 => Just(ResourceKind::Bram),
            1 => Just(ResourceKind::Iob),
            1 => Just(ResourceKind::Clk),
        ],
        1..80,
    )
}

fn arb_device() -> impl Strategy<Value = Device> {
    (arb_columns(), 1u32..9).prop_map(|(cols, rows)| {
        Device::new("prop", Family::Virtex5, rows, cols).expect("non-empty")
    })
}

fn arb_request() -> impl Strategy<Value = WindowRequest> {
    (0u32..12, 0u32..3, 0u32..3, 1u32..9)
        .prop_filter("non-empty", |(c, d, b, _)| c + d + b > 0)
        .prop_map(|(c, d, b, h)| WindowRequest::new(c, d, b, h))
}

proptest! {
    /// Any window the search returns really satisfies the request: exact
    /// per-kind counts, no IOB/CLK, in device bounds, and its recorded
    /// columns agree with the device layout.
    #[test]
    fn found_windows_are_sound(device in arb_device(), req in arb_request()) {
        if let Some(w) = device.find_window(&req) {
            prop_assert!(req.height <= device.rows());
            prop_assert!(w.end_col() <= device.width());
            prop_assert_eq!(w.width, req.width());
            prop_assert_eq!(w.height, req.height);
            let counts = w.column_counts();
            prop_assert_eq!(counts.clb(), u64::from(req.clb_cols));
            prop_assert_eq!(counts.dsp(), u64::from(req.dsp_cols));
            prop_assert_eq!(counts.bram(), u64::from(req.bram_cols));
            prop_assert!(w.columns.iter().all(|c| c.allowed_in_prr()));
            prop_assert_eq!(
                &w.columns[..],
                &device.columns()[w.start_col..w.end_col()]
            );
        }
    }

    /// The search is complete and leftmost: the returned start column is
    /// the first position whose span matches; if it returns None, no
    /// position matches.
    #[test]
    fn search_is_leftmost_and_complete(device in arb_device(), req in arb_request()) {
        let width = req.width() as usize;
        let brute: Option<usize> = if req.height > device.rows() || width == 0 {
            None
        } else {
            (0..device.width().saturating_sub(width - 1)).find(|&start| {
                let span = &device.columns()[start..start + width];
                let mut c = (0u32, 0u32, 0u32);
                for &k in span {
                    match k {
                        ResourceKind::Clb => c.0 += 1,
                        ResourceKind::Dsp => c.1 += 1,
                        ResourceKind::Bram => c.2 += 1,
                        _ => return false,
                    }
                }
                c == (req.clb_cols, req.dsp_cols, req.bram_cols)
            })
        };
        prop_assert_eq!(device.find_window(&req).map(|w| w.start_col), brute);
    }

    /// Device resource totals equal column counts x rows x per-column
    /// density.
    #[test]
    fn totals_are_consistent(device in arb_device()) {
        let p = device.params();
        let counts = device.column_counts();
        let totals = device.total_resources();
        prop_assert_eq!(
            totals.clb(),
            counts.clb() * u64::from(device.rows()) * u64::from(p.clb_col)
        );
        prop_assert_eq!(
            totals.dsp(),
            counts.dsp() * u64::from(device.rows()) * u64::from(p.dsp_col)
        );
        prop_assert_eq!(
            totals.bram(),
            counts.bram() * u64::from(device.rows()) * u64::from(p.bram_col)
        );
    }

    /// `windows()` yields strictly increasing, pairwise-distinct start
    /// columns, and each yielded window matches the request.
    #[test]
    fn windows_iterator_is_ordered(device in arb_device(), req in arb_request()) {
        let starts: Vec<usize> = device.windows(&req).map(|w| w.start_col).collect();
        prop_assert!(starts.windows(2).all(|p| p[0] < p[1]));
    }

    /// Three-way equivalence on random synthetic fabrics: the composition
    /// index, the frozen seed memo, and the uncached linear scan return
    /// identical windows (or identically nothing) for arbitrary requests.
    #[test]
    fn index_memo_and_scan_agree(device in arb_device(), req in arb_request()) {
        let index = DeviceGeometry::new(&device);
        let memo = MemoGeometry::new(&device);
        let direct = device.find_window(&req);
        prop_assert_eq!(index.find_window(&device, &req), direct.clone());
        prop_assert_eq!(memo.find_window(&device, &req), direct);
    }
}

/// Every achievable composition of `device` (every contiguous IOB/CLK-free
/// span), plus near-miss variants that have no exact window, as
/// `(clb, dsp, bram)` triples.
fn compositions_to_probe(device: &Device) -> Vec<(u32, u32, u32)> {
    let cols = device.columns();
    let mut comps = Vec::new();
    for start in 0..cols.len() {
        let mut c = (0u32, 0u32, 0u32);
        for &kind in &cols[start..] {
            match kind {
                ResourceKind::Clb => c.0 += 1,
                ResourceKind::Dsp => c.1 += 1,
                ResourceKind::Bram => c.2 += 1,
                _ => break,
            }
            comps.push(c);
            // Near misses: one extra column of each kind beyond this
            // span's exact composition exercises the None paths.
            comps.push((c.0 + 1, c.1, c.2));
            comps.push((c.0, c.1 + 1, c.2));
            comps.push((c.0, c.1, c.2 + 1));
        }
    }
    comps.sort_unstable();
    comps.dedup();
    comps
}

/// Exhaustive equivalence on the paper's device database: for every
/// achievable (and near-miss) composition of every device, at every
/// height from 1 through rows + 1, the composition index, the frozen
/// seed memo, and the uncached scan agree exactly.
#[test]
fn index_matches_reference_on_every_database_composition() {
    for device in fabric::all_devices() {
        let index = DeviceGeometry::new(&device);
        let memo = MemoGeometry::new(&device);
        for (clb, dsp, bram) in compositions_to_probe(&device) {
            assert_eq!(
                index.leftmost_start(clb, dsp, bram),
                memo.leftmost_start(clb, dsp, bram),
                "{}: leftmost start diverges for ({clb},{dsp},{bram})",
                device.name()
            );
            for height in 1..=device.rows() + 1 {
                let req = WindowRequest::new(clb, dsp, bram, height);
                let direct = device.find_window(&req);
                assert_eq!(
                    index.find_window(&device, &req),
                    direct,
                    "{}: index vs scan diverge for ({clb},{dsp},{bram}) h={height}",
                    device.name()
                );
                assert_eq!(
                    memo.find_window(&device, &req),
                    direct,
                    "{}: memo vs scan diverge for ({clb},{dsp},{bram}) h={height}",
                    device.name()
                );
            }
        }
    }
}
