//! Structured synthesis reports and the paper's slice-pair algebra.

use core::fmt;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// Resource requirements of one PRM, as reported by synthesis.
///
/// These are exactly the Table I inputs of the PRR size/organization cost
/// model. The paper defines (§III.B):
///
/// * `LUT_FF_req` (here [`lut_ff_pairs`](Self::lut_ff_pairs)) — slice
///   LUT–FF pair slots used, partitioned into pairs with an unused LUT
///   (FF only), fully used pairs, and pairs with an unused FF (LUT only);
/// * `FF_req` = pairs-with-unused-LUT + fully-used pairs;
/// * `LUT_req` = fully-used pairs + pairs-with-unused-FF.
///
/// Hence the invariants `lut_ff_pairs >= max(luts, ffs)` and
/// `luts + ffs >= lut_ff_pairs`, checked by [`validate`](Self::validate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthReport {
    /// PRM (module) name.
    pub module: String,
    /// Family the synthesis targeted (resource mapping is family-specific).
    pub family: Family,
    /// `LUT_FF_req`: LUT–FF pair slots used.
    pub lut_ff_pairs: u64,
    /// `LUT_req`: slice LUTs used.
    pub luts: u64,
    /// `FF_req`: slice registers used.
    pub ffs: u64,
    /// `DSP_req`: DSP blocks used.
    pub dsps: u64,
    /// `BRAM_req`: block RAMs used.
    pub brams: u64,
}

/// The three-way decomposition of `LUT_FF_req` (paper §III.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairBreakdown {
    /// Pairs where only the FF is used (`LUT_FF_req - LUT_req`).
    pub unused_lut: u64,
    /// Fully used LUT–FF pairs (`LUT_req + FF_req - LUT_FF_req`).
    pub fully_used: u64,
    /// Pairs where only the LUT is used (`LUT_FF_req - FF_req`).
    pub unused_ff: u64,
}

impl PairBreakdown {
    /// Total pair slots (`LUT_FF_req`).
    pub fn pairs(&self) -> u64 {
        self.unused_lut + self.fully_used + self.unused_ff
    }

    /// LUTs implied by the breakdown.
    pub fn luts(&self) -> u64 {
        self.fully_used + self.unused_ff
    }

    /// FFs implied by the breakdown.
    pub fn ffs(&self) -> u64 {
        self.fully_used + self.unused_lut
    }
}

/// Report-consistency violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// `LUT_FF_req < max(LUT_req, FF_req)` — a pair slot is missing.
    PairsBelowMax {
        /// Reported pair count.
        pairs: u64,
        /// Reported LUTs.
        luts: u64,
        /// Reported FFs.
        ffs: u64,
    },
    /// `LUT_req + FF_req < LUT_FF_req` — more pair slots than members.
    PairsAboveSum {
        /// Reported pair count.
        pairs: u64,
        /// Reported LUTs.
        luts: u64,
        /// Reported FFs.
        ffs: u64,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::PairsBelowMax { pairs, luts, ffs } => write!(
                f,
                "LUT_FF_req ({pairs}) < max(LUT_req={luts}, FF_req={ffs}): impossible pairing"
            ),
            ReportError::PairsAboveSum { pairs, luts, ffs } => write!(
                f,
                "LUT_req + FF_req ({luts}+{ffs}) < LUT_FF_req ({pairs}): pair slots exceed members"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl SynthReport {
    /// Build a report from the five Table I quantities.
    pub fn new(
        module: impl Into<String>,
        family: Family,
        lut_ff_pairs: u64,
        luts: u64,
        ffs: u64,
        dsps: u64,
        brams: u64,
    ) -> Self {
        SynthReport {
            module: module.into(),
            family,
            lut_ff_pairs,
            luts,
            ffs,
            dsps,
            brams,
        }
    }

    /// Build from a pair breakdown (always internally consistent).
    pub fn from_breakdown(
        module: impl Into<String>,
        family: Family,
        breakdown: PairBreakdown,
        dsps: u64,
        brams: u64,
    ) -> Self {
        SynthReport::new(
            module,
            family,
            breakdown.pairs(),
            breakdown.luts(),
            breakdown.ffs(),
            dsps,
            brams,
        )
    }

    /// Check the slice-pair algebra invariants.
    pub fn validate(&self) -> Result<(), ReportError> {
        if self.lut_ff_pairs < self.luts.max(self.ffs) {
            return Err(ReportError::PairsBelowMax {
                pairs: self.lut_ff_pairs,
                luts: self.luts,
                ffs: self.ffs,
            });
        }
        if self.luts + self.ffs < self.lut_ff_pairs {
            return Err(ReportError::PairsAboveSum {
                pairs: self.lut_ff_pairs,
                luts: self.luts,
                ffs: self.ffs,
            });
        }
        Ok(())
    }

    /// The three-way pair decomposition (valid reports only).
    pub fn breakdown(&self) -> Result<PairBreakdown, ReportError> {
        self.validate()?;
        Ok(PairBreakdown {
            unused_lut: self.lut_ff_pairs - self.luts,
            fully_used: self.luts + self.ffs - self.lut_ff_pairs,
            unused_ff: self.lut_ff_pairs - self.ffs,
        })
    }

    /// Percentage saving of `self` relative to `baseline` for a quantity
    /// selected by `f`, matching the paper's Table VI convention: positive
    /// means `self` uses fewer resources than `baseline`.
    pub fn saving_pct(&self, baseline: &SynthReport, f: impl Fn(&SynthReport) -> u64) -> f64 {
        let base = f(baseline) as f64;
        if base == 0.0 {
            return 0.0;
        }
        (base - f(self) as f64) / base * 100.0
    }
}

impl fmt::Display for SynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} LUT-FF pairs, {} LUTs, {} FFs, {} DSPs, {} BRAMs",
            self.module, self.family, self.lut_ff_pairs, self.luts, self.ffs, self.dsps, self.brams
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_v5() -> SynthReport {
        SynthReport::new("fir", Family::Virtex5, 1300, 1150, 394, 32, 0)
    }

    #[test]
    fn breakdown_matches_paper_definitions() {
        let b = fir_v5().breakdown().unwrap();
        assert_eq!(b.unused_ff, 906); // LUT-only pairs
        assert_eq!(b.unused_lut, 150); // FF-only pairs
        assert_eq!(b.fully_used, 244);
        assert_eq!(b.pairs(), 1300);
        assert_eq!(b.luts(), 1150);
        assert_eq!(b.ffs(), 394);
    }

    #[test]
    fn from_breakdown_round_trips() {
        let b = PairBreakdown {
            unused_lut: 10,
            fully_used: 20,
            unused_ff: 30,
        };
        let r = SynthReport::from_breakdown("m", Family::Virtex6, b, 1, 2);
        assert_eq!(r.lut_ff_pairs, 60);
        assert_eq!(r.luts, 50);
        assert_eq!(r.ffs, 30);
        assert_eq!(r.breakdown().unwrap(), b);
    }

    #[test]
    fn validate_rejects_impossible_pairings() {
        let too_few_pairs = SynthReport::new("m", Family::Virtex5, 10, 20, 5, 0, 0);
        assert!(matches!(
            too_few_pairs.validate(),
            Err(ReportError::PairsBelowMax { .. })
        ));

        let too_many_pairs = SynthReport::new("m", Family::Virtex5, 100, 30, 40, 0, 0);
        assert!(matches!(
            too_many_pairs.validate(),
            Err(ReportError::PairsAboveSum { .. })
        ));

        assert!(fir_v5().validate().is_ok());
    }

    #[test]
    fn saving_pct_matches_table6_convention() {
        let synth = fir_v5();
        let post = SynthReport::new("fir", Family::Virtex5, 1082, 1015, 410, 32, 0);
        let s = post.saving_pct(&synth, |r| r.lut_ff_pairs);
        assert!((s - 16.8).abs() < 0.05, "got {s}");
        let s_ff = post.saving_pct(&synth, |r| r.ffs);
        assert!((s_ff - (-4.1)).abs() < 0.05, "got {s_ff}");
        // Zero baseline yields 0% (paper reports 0% for unused DSP/BRAM).
        assert_eq!(post.saving_pct(&synth, |r| r.brams), 0.0);
    }

    #[test]
    fn edge_case_all_zero_is_valid() {
        let r = SynthReport::new("empty", Family::Virtex4, 0, 0, 0, 0, 0);
        assert!(r.validate().is_ok());
        let b = r.breakdown().unwrap();
        assert_eq!(b.pairs(), 0);
    }
}
