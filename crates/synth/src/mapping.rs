//! Technology-mapping estimator: abstract operator counts → family resources.
//!
//! The parametric PRM generators describe an architecture as operator
//! counts (multipliers, adders, register bits, memory bits, FSM states,
//! muxes); this module maps them onto a family's primitives the way XST
//! would to first order: wide multiplies onto DSP blocks (with the
//! Virtex-6/7-series pre-adder packing symmetric tap pairs), adders onto
//! carry-chain LUTs, memories onto 36 kb (or Virtex-4 18 kb) BRAMs, and
//! control logic onto LUTs, then estimates slice LUT–FF pairing.

use crate::report::{PairBreakdown, SynthReport};
use fabric::Family;
use serde::{Deserialize, Serialize};

/// Abstract operator counts describing a PRM architecture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Wide multiplies (or multiply-accumulates), each `mult_width` bits.
    pub mults: u32,
    /// Operand width of the multiplies.
    pub mult_width: u32,
    /// Whether multiply pairs are symmetric (FIR with symmetric
    /// coefficients) — lets pre-adder DSPs (Virtex-6/7-series) share.
    pub symmetric_mults: bool,
    /// Adders/subtractors, each `add_width` bits.
    pub adders: u32,
    /// Operand width of the adders.
    pub add_width: u32,
    /// Total architectural register bits (pipeline, state, counters).
    pub register_bits: u64,
    /// Total memory bits that must land in block RAM.
    pub mem_bits: u64,
    /// FSM states (control logic).
    pub fsm_states: u32,
    /// Dataflow multiplexers, each selecting between `mux_inputs` buses of
    /// `mux_width` bits.
    pub muxes: u32,
    /// Width of each mux bus.
    pub mux_width: u32,
    /// Inputs per mux.
    pub mux_inputs: u32,
    /// Miscellaneous random logic, in LUTs.
    pub misc_luts: u64,
}

/// Fraction of the smaller of (LUTs, FFs) that XST packs into fully used
/// LUT–FF pairs; the remainder occupy their own pair slots. Derived from
/// the paper PRMs' reconstructed breakdowns (24–62 % fully used).
const PACK_FACTOR: f64 = 0.45;

/// Map `ops` to a synthesis report for `family`.
pub fn map(module: &str, ops: &OpCounts, family: Family) -> SynthReport {
    let p = family.params();

    // --- DSP blocks -------------------------------------------------------
    // DSP48-class blocks multiply 25x18 (18x18 on Virtex-4). Wider operands
    // tile multiple blocks. Virtex-6/7-series DSP48E1 pre-adders let
    // symmetric coefficient pairs share a multiplier for ~15 % of the taps.
    let (dsp_a, dsp_b) = match family {
        Family::Virtex4 | Family::Spartan6 => (18u32, 18u32),
        _ => (25, 18),
    };
    let tiles =
        u64::from(ops.mult_width.div_ceil(dsp_a)) * u64::from(ops.mult_width.div_ceil(dsp_b));
    let mut dsps = u64::from(ops.mults) * tiles.max(1);
    if dsps > 0 && ops.mults == 0 {
        dsps = 0;
    }
    let has_preadder = matches!(family, Family::Virtex6 | Family::Series7);
    if has_preadder && ops.symmetric_mults && dsps > 1 {
        // Pre-adder shares ~1 in 6 multipliers for symmetric structures.
        dsps -= dsps / 6;
    }

    // --- Block RAMs -------------------------------------------------------
    let bram_bits: u64 = match family {
        Family::Virtex4 | Family::Spartan6 => 18 * 1024,
        _ => 36 * 1024,
    };
    let brams = ops.mem_bits.div_ceil(bram_bits.max(1)).min(ops.mem_bits); // 0 if mem_bits == 0

    // --- LUTs -------------------------------------------------------------
    // Adders cost one LUT per bit (carry chains); muxes cost
    // width * ceil((inputs-1)/(inputs_per_lut-1)) LUTs; FSMs roughly
    // 3 LUTs per state on LUT6 fabrics, 4 on LUT4 (Virtex-4).
    let lut_inputs: u32 = match family {
        Family::Virtex4 => 4,
        _ => 6,
    };
    let mux_per_lut = (lut_inputs / 2).max(1); // 2:1 legs per LUT
    let adder_luts = u64::from(ops.adders) * u64::from(ops.add_width);
    let mux_luts = u64::from(ops.muxes)
        * u64::from(ops.mux_width)
        * u64::from(
            ops.mux_inputs
                .saturating_sub(1)
                .div_ceil(mux_per_lut)
                .max(1),
        )
        * u64::from(u32::from(ops.mux_inputs > 1));
    let fsm_luts = u64::from(ops.fsm_states) * if lut_inputs >= 6 { 3 } else { 4 };
    let luts = adder_luts + mux_luts + fsm_luts + ops.misc_luts;

    // --- FFs ----------------------------------------------------------
    // Virtex-6/7 CLBs have twice the FFs per LUT; register bits map 1:1
    // regardless, so FF counts are family-independent at this level.
    let ffs = ops.register_bits;
    let _ = p;

    // --- Slice pairing ----------------------------------------------------
    let fully_used = ((luts.min(ffs)) as f64 * PACK_FACTOR).round() as u64;
    let breakdown = PairBreakdown {
        unused_lut: ffs - fully_used,
        fully_used,
        unused_ff: luts - fully_used,
    };

    SynthReport::from_breakdown(module, family, breakdown, dsps, brams)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ops_map_to_empty_report() {
        let r = map("nop", &OpCounts::default(), Family::Virtex5);
        assert_eq!(r.lut_ff_pairs, 0);
        assert_eq!(r.dsps, 0);
        assert_eq!(r.brams, 0);
        r.validate().unwrap();
    }

    #[test]
    fn mapped_reports_always_validate() {
        let ops = OpCounts {
            mults: 32,
            mult_width: 16,
            symmetric_mults: true,
            adders: 31,
            add_width: 38,
            register_bits: 600,
            mem_bits: 200_000,
            fsm_states: 12,
            muxes: 8,
            mux_width: 32,
            mux_inputs: 4,
            misc_luts: 100,
        };
        for fam in Family::ALL {
            map("m", &ops, fam).validate().unwrap();
        }
    }

    #[test]
    fn preadder_reduces_symmetric_dsps_on_v6_only() {
        let ops = OpCounts {
            mults: 32,
            mult_width: 16,
            symmetric_mults: true,
            ..OpCounts::default()
        };
        let v5 = map("m", &ops, Family::Virtex5);
        let v6 = map("m", &ops, Family::Virtex6);
        assert_eq!(v5.dsps, 32);
        assert_eq!(v6.dsps, 27, "32 - 32/6 = 27, matching the paper's FIR");
    }

    #[test]
    fn wide_mults_tile_multiple_dsps() {
        let ops = OpCounts {
            mults: 1,
            mult_width: 32,
            ..OpCounts::default()
        };
        let v5 = map("m", &ops, Family::Virtex5);
        // 32 bits needs ceil(32/25) x ceil(32/18) = 2 x 2 = 4 DSP48Es.
        assert_eq!(v5.dsps, 4);
        let v4 = map("m", &ops, Family::Virtex4);
        assert_eq!(v4.dsps, 4); // ceil(32/18)^2 = 4
    }

    #[test]
    fn bram_capacity_is_family_specific() {
        let ops = OpCounts {
            mem_bits: 200 * 1024,
            ..OpCounts::default()
        };
        assert_eq!(map("m", &ops, Family::Virtex5).brams, 6); // 200k/36k
        assert_eq!(map("m", &ops, Family::Virtex4).brams, 12); // 200k/18k
    }

    #[test]
    fn lut4_fabric_needs_more_mux_luts() {
        let ops = OpCounts {
            muxes: 4,
            mux_width: 32,
            mux_inputs: 4,
            ..OpCounts::default()
        };
        let v5 = map("m", &ops, Family::Virtex5);
        let v4 = map("m", &ops, Family::Virtex4);
        assert!(
            v4.luts > v5.luts,
            "LUT4 mux cost {} <= LUT6 {}",
            v4.luts,
            v5.luts
        );
    }
}
