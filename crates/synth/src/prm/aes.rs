//! AES-128 round engine PRM (extension beyond the paper's three modules).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// An iterative AES-128 encryption engine: one round per cycle, S-boxes in
/// block RAM (or distributed LUTs), key schedule on the fly. A useful
/// "LUT+BRAM, no DSP" point in the PRM space for multitasking workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AesEngine {
    /// Number of parallel 128-bit lanes.
    pub lanes: u32,
    /// Store S-boxes in BRAM (`true`) or distributed LUT ROMs (`false`).
    pub sbox_in_bram: bool,
}

impl AesEngine {
    /// Single-lane engine with BRAM S-boxes.
    pub fn standard() -> Self {
        AesEngine {
            lanes: 1,
            sbox_in_bram: true,
        }
    }

    /// A custom engine.
    pub fn new(lanes: u32, sbox_in_bram: bool) -> Self {
        AesEngine {
            lanes,
            sbox_in_bram,
        }
    }
}

impl PrmGenerator for AesEngine {
    fn name(&self) -> String {
        format!("aes128x{}", self.lanes)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let lanes = u64::from(self.lanes);
        // 16 S-boxes + 4 for key schedule per lane; each S-box is a
        // 256x8 ROM = 2 kb.
        let sbox_bits = lanes * 20 * 2048;
        let (mem_bits, sbox_luts) = if self.sbox_in_bram {
            (sbox_bits, 0)
        } else {
            (0, lanes * 20 * 32) // 32 LUT6s per 256x8 ROM
        };
        OpCounts {
            mults: 0,
            mult_width: 0,
            symmetric_mults: false,
            adders: 0,
            add_width: 0,
            // State + round key + input/output registers per lane.
            register_bits: lanes * (128 * 3 + 16),
            fsm_states: 12,
            // MixColumns + AddRoundKey xor network.
            muxes: self.lanes * 4,
            mux_width: 32,
            mux_inputs: 2,
            mem_bits,
            misc_luts: lanes * 640 + sbox_luts, // xor trees + key schedule
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_vs_lut_sbox_tradeoff() {
        let bram = AesEngine::new(1, true).synthesize(Family::Virtex5);
        let lut = AesEngine::new(1, false).synthesize(Family::Virtex5);
        assert!(bram.brams > 0);
        assert_eq!(lut.brams, 0);
        assert!(lut.luts > bram.luts);
    }

    #[test]
    fn lanes_scale_linearly() {
        let one = AesEngine::new(1, true).synthesize(Family::Virtex5);
        let four = AesEngine::new(4, true).synthesize(Family::Virtex5);
        assert_eq!(four.ffs, 4 * one.ffs);
        assert!(four.brams >= one.brams * 2);
    }

    #[test]
    fn reports_validate_on_all_families() {
        for fam in Family::ALL {
            AesEngine::standard().synthesize(fam).validate().unwrap();
        }
    }
}
