//! Finite impulse response filter PRM (the paper's `FIR`).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A transposed-form FIR filter: one multiply-accumulate per tap, an adder
/// chain, and an output pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirFilter {
    /// Number of coefficients (taps).
    pub taps: u32,
    /// Input sample width in bits.
    pub data_width: u32,
    /// Coefficient width in bits.
    pub coef_width: u32,
    /// Symmetric coefficients (enables pre-adder sharing on Virtex-6/7).
    pub symmetric: bool,
}

impl FirFilter {
    /// The paper's instance: a 32-coefficient filter (§IV).
    pub fn paper() -> Self {
        FirFilter {
            taps: 32,
            data_width: 16,
            coef_width: 16,
            symmetric: true,
        }
    }

    /// A custom filter.
    pub fn new(taps: u32, data_width: u32, coef_width: u32, symmetric: bool) -> Self {
        FirFilter {
            taps,
            data_width,
            coef_width,
            symmetric,
        }
    }

    /// Full-precision accumulator width: product width plus tap growth.
    pub fn accumulator_width(&self) -> u32 {
        self.data_width + self.coef_width + 32u32.saturating_sub(self.taps.leading_zeros())
    }
}

impl PrmGenerator for FirFilter {
    fn name(&self) -> String {
        format!("fir{}", self.taps)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let acc = self.accumulator_width();
        OpCounts {
            mults: self.taps,
            mult_width: self.data_width.max(self.coef_width),
            symmetric_mults: self.symmetric,
            // Adder chain between taps, sized near the product width; the
            // constant tail models I/O registering and rounding logic.
            adders: self.taps.saturating_sub(1),
            add_width: acc.saturating_sub(5),
            register_bits: u64::from(self.taps) * u64::from(self.data_width) / 2
                + u64::from(acc) * 3
                + 24,
            fsm_states: 0,
            muxes: 0,
            mux_width: 0,
            mux_inputs: 0,
            mem_bits: 0,
            misc_luts: u64::from(self.data_width) * 8 - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_synth_report;
    use crate::prm::PaperPrm;

    #[test]
    fn paper_instance_matches_dsp_and_lut_counts() {
        let fir = FirFilter::paper();
        let v5 = fir.synthesize(Family::Virtex5);
        let paper = paper_synth_report(PaperPrm::Fir, Family::Virtex5).unwrap();
        assert_eq!(v5.dsps, paper.dsps, "32 DSP48Es on Virtex-5");
        assert_eq!(v5.luts, paper.luts, "adder chain + misc = 1150 LUTs");
        assert_eq!(v5.ffs, paper.ffs, "394 pipeline registers");

        let v6 = fir.synthesize(Family::Virtex6);
        assert_eq!(v6.dsps, 27, "pre-adder packing on Virtex-6");
    }

    #[test]
    fn taps_scale_resources_monotonically() {
        let small = FirFilter::new(8, 16, 16, false).synthesize(Family::Virtex5);
        let large = FirFilter::new(64, 16, 16, false).synthesize(Family::Virtex5);
        assert!(large.dsps > small.dsps);
        assert!(large.luts > small.luts);
        assert!(large.ffs > small.ffs);
    }

    #[test]
    fn wide_data_tiles_dsps() {
        let wide = FirFilter::new(8, 32, 18, false).synthesize(Family::Virtex5);
        assert_eq!(wide.dsps, 8 * 4, "32-bit operands tile 4 DSP48Es each");
    }

    #[test]
    fn name_includes_taps() {
        assert_eq!(FirFilter::paper().name(), "fir32");
    }
}
