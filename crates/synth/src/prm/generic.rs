//! Generic/random PRMs for workload generation and sweeps.

use crate::mapping::OpCounts;
use crate::netlist::SplitMix64;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A PRM described directly by its operator counts. Used by parameter
/// sweeps and the multitasking workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenericPrm {
    /// Module name.
    pub name: String,
    /// Operator counts (family-independent description).
    pub ops: OpCounts,
}

impl GenericPrm {
    /// Wrap explicit operator counts.
    pub fn new(name: impl Into<String>, ops: OpCounts) -> Self {
        GenericPrm {
            name: name.into(),
            ops,
        }
    }

    /// Deterministic pseudo-random PRM at a given `scale` (rough LUT
    /// count). Mixes datapath (multiplies/adders), control (FSM) and
    /// memory in seed-dependent proportions, so a stream of seeds yields a
    /// diverse hardware-task population.
    pub fn random(seed: u64, scale: u32) -> Self {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
        let scale = scale.max(16);
        let flavor = rng.below(3); // 0 = datapath, 1 = control, 2 = memory
        let mults = match flavor {
            0 => (scale / 64) + rng.below(8) as u32,
            _ => rng.below(3) as u32,
        };
        let mem_kb = match flavor {
            2 => 16 + rng.below(128),
            _ => rng.below(8),
        };
        let fsm = match flavor {
            1 => 16 + rng.below(48) as u32,
            _ => rng.below(8) as u32,
        };
        let ops = OpCounts {
            mults,
            mult_width: 16 + (rng.below(3) * 8) as u32,
            symmetric_mults: rng.below(2) == 0,
            adders: (scale / 48) + rng.below(6) as u32,
            add_width: 16 + rng.below(17) as u32,
            register_bits: u64::from(scale) / 2 + rng.below(u64::from(scale) / 2 + 1),
            fsm_states: fsm,
            muxes: rng.below(12) as u32,
            mux_width: 32,
            mux_inputs: 2 + rng.below(3) as u32,
            mem_bits: mem_kb * 1024,
            misc_luts: u64::from(scale) / 3 + rng.below(u64::from(scale) / 4 + 1),
        };
        GenericPrm {
            name: format!("task_{seed:04x}"),
            ops,
        }
    }
}

impl PrmGenerator for GenericPrm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = GenericPrm::random(7, 1000);
        let b = GenericPrm::random(7, 1000);
        assert_eq!(a, b);
        let c = GenericPrm::random(8, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn random_reports_always_validate() {
        for seed in 0..200 {
            for fam in Family::ALL {
                GenericPrm::random(seed, 500 + (seed as u32 * 37) % 4000)
                    .synthesize(fam)
                    .validate()
                    .unwrap_or_else(|e| panic!("seed {seed} family {fam}: {e}"));
            }
        }
    }

    #[test]
    fn scale_tracks_resource_totals() {
        let avg = |scale: u32| -> f64 {
            (0..32)
                .map(|s| {
                    GenericPrm::random(s, scale)
                        .synthesize(Family::Virtex5)
                        .lut_ff_pairs
                })
                .sum::<u64>() as f64
                / 32.0
        };
        assert!(avg(4000) > avg(500) * 2.0);
    }

    #[test]
    fn population_is_diverse() {
        let pop: Vec<_> = (0..64).map(|s| GenericPrm::random(s, 1500)).collect();
        let with_dsp = pop
            .iter()
            .filter(|p| p.synthesize(Family::Virtex5).dsps > 0)
            .count();
        let with_bram = pop
            .iter()
            .filter(|p| p.synthesize(Family::Virtex5).brams > 0)
            .count();
        assert!(with_dsp > 8, "some tasks use DSPs ({with_dsp})");
        assert!(with_bram > 8, "some tasks use BRAMs ({with_bram})");
        assert!(with_dsp < 64, "not all tasks use DSPs");
    }
}
