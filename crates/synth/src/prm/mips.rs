//! 5-stage pipelined MIPS R3000 PRM (the paper's `MIPS`).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A classic 5-stage (IF/ID/EX/MEM/WB) in-order MIPS pipeline with a
/// full-width hardware multiplier and BRAM-backed instruction/data memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MipsCore {
    /// Datapath width in bits.
    pub width: u32,
    /// Pipeline depth.
    pub stages: u32,
    /// Instruction + data memory size in bits (lands in BRAM).
    pub mem_bits: u64,
}

impl MipsCore {
    /// The paper's instance: 32-bit, 5 stages, memories filling 6 BRAM36s
    /// (§IV; BRAM_req = 6 in Table V).
    pub fn paper() -> Self {
        MipsCore {
            width: 32,
            stages: 5,
            mem_bits: 204 * 1024,
        }
    }

    /// A custom core.
    pub fn new(width: u32, stages: u32, mem_bits: u64) -> Self {
        MipsCore {
            width,
            stages,
            mem_bits,
        }
    }
}

impl PrmGenerator for MipsCore {
    fn name(&self) -> String {
        format!("mips{}_{}stage", self.width, self.stages)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let w = self.width;
        OpCounts {
            // One full-width multiplier (the R3000 MULT unit): 32-bit
            // operands tile 4 DSP blocks on every modeled family.
            mults: 1,
            mult_width: w,
            symmetric_mults: false,
            // ALU add/sub, PC incrementer, branch adder, address adder.
            adders: 4,
            add_width: w,
            // Pipeline latches: roughly 2 full datapath words plus control
            // per stage boundary, plus the architectural register file's
            // bypass registers.
            register_bits: u64::from(self.stages) * u64::from(w) * 9 + u64::from(w) * 4 + 24,
            fsm_states: 8,
            // Forwarding/hazard muxes: 3 per stage boundary.
            muxes: 3 * self.stages.saturating_sub(1),
            mux_width: w,
            mux_inputs: 4,
            mem_bits: self.mem_bits,
            misc_luts: u64::from(w) * 30 + 31, // decode + control random logic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_synth_report;
    use crate::prm::PaperPrm;

    #[test]
    fn paper_instance_matches_key_counts() {
        let mips = MipsCore::paper();
        let v5 = mips.synthesize(Family::Virtex5);
        let paper = paper_synth_report(PaperPrm::Mips, Family::Virtex5).unwrap();
        assert_eq!(v5.dsps, 4, "32x32 multiply tiles 4 DSP48Es");
        assert_eq!(v5.brams, 6, "204 kb of memory fills 6 BRAM36s");
        assert_eq!(v5.luts, paper.luts);
        assert_eq!(v5.ffs, paper.ffs);
    }

    #[test]
    fn virtex4_needs_more_brams_for_same_memory() {
        let mips = MipsCore::paper();
        let v4 = mips.synthesize(Family::Virtex4);
        assert_eq!(v4.brams, 12, "18 kb RAMB16s on Virtex-4");
        assert_eq!(v4.dsps, 4, "ceil(32/18)^2 = 4 DSP48s");
    }

    #[test]
    fn deeper_pipelines_cost_more_registers() {
        let p5 = MipsCore::new(32, 5, 0).synthesize(Family::Virtex5);
        let p8 = MipsCore::new(32, 8, 0).synthesize(Family::Virtex5);
        assert!(p8.ffs > p5.ffs);
    }
}
