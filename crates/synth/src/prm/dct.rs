//! 2-D DCT PRM (JPEG-style transform block).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A row-column 2-D discrete cosine transform: two 1-D DCT passes with a
/// transpose buffer in BRAM. A balanced DSP+BRAM+logic point typical of
/// image pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DctCore {
    /// Block size (8 for JPEG).
    pub block: u32,
    /// Sample width in bits.
    pub width: u32,
}

impl DctCore {
    /// JPEG-style 8x8, 12-bit internal precision.
    pub fn jpeg() -> Self {
        DctCore {
            block: 8,
            width: 12,
        }
    }

    /// A custom transform.
    pub fn new(block: u32, width: u32) -> Self {
        DctCore {
            block: block.max(2),
            width,
        }
    }
}

impl PrmGenerator for DctCore {
    fn name(&self) -> String {
        format!("dct{}x{}", self.block, self.block)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let n = self.block;
        OpCounts {
            // One multiplier per butterfly stage per pass (factorized DCT
            // needs ~n/2 multipliers per 1-D pass, two passes).
            mults: n,
            mult_width: self.width + 2,
            symmetric_mults: true,
            adders: n * 2,
            add_width: self.width + 4,
            register_bits: u64::from(n) * u64::from(self.width) * 6,
            fsm_states: 6,
            muxes: n / 2,
            mux_width: self.width,
            mux_inputs: 2,
            // Transpose buffer: two n x n blocks, double-buffered.
            mem_bits: 2 * u64::from(n) * u64::from(n) * u64::from(self.width + 4),
            misc_luts: u64::from(n) * 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_profile_is_balanced() {
        let r = DctCore::jpeg().synthesize(Family::Virtex5);
        r.validate().unwrap();
        assert!(r.dsps >= 8, "dsps {}", r.dsps);
        assert!(r.brams >= 1);
        assert!(r.luts > 0 && r.ffs > 0);
    }

    #[test]
    fn bigger_blocks_cost_more() {
        let small = DctCore::new(4, 12).synthesize(Family::Virtex5);
        let big = DctCore::new(16, 12).synthesize(Family::Virtex5);
        assert!(big.dsps > small.dsps);
        assert!(big.luts > small.luts);
    }

    #[test]
    fn validates_on_all_families() {
        for fam in Family::ALL {
            DctCore::jpeg().synthesize(fam).validate().unwrap();
        }
    }
}
