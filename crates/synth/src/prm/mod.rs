//! PR module (PRM) generators.
//!
//! Each generator describes a hardware-task architecture parametrically and
//! synthesizes it to a [`SynthReport`] via the [`crate::mapping`] estimator.
//! [`PaperPrm`] wraps the three PRMs evaluated in the paper with their exact
//! published parameters; on the families the paper evaluated, its reports
//! come from [`crate::calibration`] so downstream experiments consume
//! exactly the paper's inputs.

mod aes;
mod dct;
mod fft;
mod fir;
mod generic;
mod mips;
mod sdram;
mod uart;

pub use aes::AesEngine;
pub use dct::DctCore;
pub use fft::FftCore;
pub use fir::FirFilter;
pub use generic::GenericPrm;
pub use mips::MipsCore;
pub use sdram::SdramController;
pub use uart::Uart;

use crate::calibration;
use crate::mapping::{map, OpCounts};
use crate::netlist::Netlist;
use crate::report::{ReportError, SynthReport};
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A parametric PRM architecture that can be synthesized for any family.
pub trait PrmGenerator {
    /// Module name used in reports and bitstream metadata.
    fn name(&self) -> String;

    /// Abstract operator counts for `family`.
    fn op_counts(&self, family: Family) -> OpCounts;

    /// A 64-bit identity for this generator *configuration*, used as a
    /// cache key by the memoizing planning engine.
    ///
    /// Two generators with equal fingerprints are assumed to synthesize
    /// identical reports for every family; keying on the name alone is
    /// not enough (two differently-parameterized generators can share a
    /// name — e.g. two `GenericPrm`s both called `"dsp_core"` — and would
    /// silently serve each other's cached reports). The default
    /// implementation therefore hashes the name *and* the per-family
    /// operator counts, which fully determine [`PrmGenerator::synthesize`]
    /// through the default `mapping` path. Override only for generators
    /// whose `synthesize` depends on state beyond `name`/`op_counts`.
    fn fingerprint(&self) -> u64 {
        use fabric::splitmix64;
        let mut h = splitmix64(0x7072_6d5f_6669_6e67); // "prm_fing"
        let name = self.name();
        h = splitmix64(h ^ name.len() as u64);
        for chunk in name.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = splitmix64(h ^ u64::from_le_bytes(word));
        }
        for family in Family::ALL {
            let ops = self.op_counts(family);
            for field in [
                u64::from(ops.mults),
                u64::from(ops.mult_width),
                u64::from(ops.symmetric_mults),
                u64::from(ops.adders),
                u64::from(ops.add_width),
                ops.register_bits,
                ops.mem_bits,
                u64::from(ops.fsm_states),
                u64::from(ops.muxes),
                u64::from(ops.mux_width),
                u64::from(ops.mux_inputs),
                ops.misc_luts,
            ] {
                h = splitmix64(h ^ field);
            }
        }
        h
    }

    /// Synthesize to a resource report for `family`.
    fn synthesize(&self, family: Family) -> SynthReport {
        map(&self.name(), &self.op_counts(family), family)
    }

    /// Materialize a structural netlist (for the simulated PAR flow).
    fn netlist(&self, family: Family, seed: u64) -> Result<Netlist, ReportError> {
        Netlist::from_report(&self.synthesize(family), seed)
    }
}

/// The three PRMs evaluated in the paper (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperPrm {
    /// 32-coefficient finite impulse response filter.
    Fir,
    /// 5-stage pipelined MIPS R3000 32-bit processor.
    Mips,
    /// 32-bit synchronous DRAM controller.
    Sdram,
}

impl PaperPrm {
    /// All three paper PRMs.
    pub const ALL: [PaperPrm; 3] = [PaperPrm::Fir, PaperPrm::Mips, PaperPrm::Sdram];

    /// Module name.
    pub fn module_name(self) -> &'static str {
        match self {
            PaperPrm::Fir => "fir32",
            PaperPrm::Mips => "mips_r3000",
            PaperPrm::Sdram => "sdram_ctrl",
        }
    }

    /// The parametric generator configured with the paper's parameters.
    pub fn generator(self) -> Box<dyn PrmGenerator> {
        match self {
            PaperPrm::Fir => Box::new(FirFilter::paper()),
            PaperPrm::Mips => Box::new(MipsCore::paper()),
            PaperPrm::Sdram => Box::new(SdramController::paper()),
        }
    }

    /// Synthesis report for `family`: the paper's exact numbers where the
    /// paper evaluated (Virtex-5/-6), otherwise the parametric estimate.
    pub fn synth_report(self, family: Family) -> SynthReport {
        calibration::paper_synth_report(self, family).unwrap_or_else(|| {
            let mut r = self.generator().synthesize(family);
            r.module = self.module_name().to_string();
            r
        })
    }

    /// Post-place-and-route report where the paper published one
    /// (Table VI), else `None`.
    pub fn post_par_report(self, family: Family) -> Option<SynthReport> {
        calibration::paper_post_par_report(self, family)
    }

    /// Structural netlist with the calibrated resource counts.
    pub fn netlist(self, family: Family, seed: u64) -> Netlist {
        Netlist::from_report(&self.synth_report(family), seed)
            .expect("calibrated reports are internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_families_use_calibration() {
        for prm in PaperPrm::ALL {
            for fam in [Family::Virtex5, Family::Virtex6] {
                let r = prm.synth_report(fam);
                assert_eq!(Some(r), calibration::paper_synth_report(prm, fam));
            }
        }
    }

    #[test]
    fn non_paper_families_fall_back_to_generator() {
        for prm in PaperPrm::ALL {
            let r = prm.synth_report(Family::Series7);
            r.validate().unwrap();
            assert_eq!(r.module, prm.module_name());
            assert!(r.lut_ff_pairs > 0, "{prm:?} estimate is non-trivial");
        }
    }

    /// The parametric estimates should land in the same ballpark as the
    /// paper's Virtex-5 synthesis numbers (within 25 %), since the
    /// architectural formulas were derived from the same designs.
    #[test]
    fn parametric_estimates_track_paper_scale() {
        for prm in PaperPrm::ALL {
            let est = prm.generator().synthesize(Family::Virtex5);
            let paper = calibration::paper_synth_report(prm, Family::Virtex5).unwrap();
            let ratio = est.lut_ff_pairs as f64 / paper.lut_ff_pairs as f64;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{prm:?}: estimate {} vs paper {} (ratio {ratio:.2})",
                est.lut_ff_pairs,
                paper.lut_ff_pairs
            );
            assert_eq!(est.dsps, paper.dsps, "{prm:?} DSP count");
            assert_eq!(est.brams, paper.brams, "{prm:?} BRAM count");
        }
    }

    #[test]
    fn netlists_match_calibrated_counts() {
        let nl = PaperPrm::Mips.netlist(Family::Virtex5, 9);
        let r = nl.to_report();
        assert_eq!(r.lut_ff_pairs, 2618);
        assert_eq!(r.dsps, 4);
        assert_eq!(r.brams, 6);
    }
}
