//! UART PRM: a tiny control-only module (the small end of the PRM space).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A UART with configurable FIFO depth. Pure control logic: the smallest
/// realistic hardware task, useful for exercising single-column PRRs and
/// the low end of the bitstream-size model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uart {
    /// RX/TX FIFO depth in bytes (distributed RAM below 64, BRAM above).
    pub fifo_depth: u32,
}

impl Uart {
    /// 16-byte FIFOs (16550-style).
    pub fn standard() -> Self {
        Uart { fifo_depth: 16 }
    }

    /// Custom FIFO depth.
    pub fn new(fifo_depth: u32) -> Self {
        Uart { fifo_depth }
    }
}

impl PrmGenerator for Uart {
    fn name(&self) -> String {
        format!("uart_f{}", self.fifo_depth)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let deep = self.fifo_depth > 64;
        OpCounts {
            mults: 0,
            mult_width: 0,
            symmetric_mults: false,
            // Baud-rate divider.
            adders: 1,
            add_width: 16,
            // Shift registers, FIFO pointers, status.
            register_bits: 64 + u64::from(2 * self.fifo_depth.min(64)) * 8 / 8,
            fsm_states: 8,
            muxes: 2,
            mux_width: 8,
            mux_inputs: 2,
            mem_bits: if deep {
                u64::from(self.fifo_depth) * 2 * 8
            } else {
                0
            },
            misc_luts: 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_is_tiny() {
        let r = Uart::standard().synthesize(Family::Virtex5);
        r.validate().unwrap();
        assert!(r.lut_ff_pairs < 300, "pairs {}", r.lut_ff_pairs);
        assert_eq!(r.dsps, 0);
        assert_eq!(r.brams, 0, "shallow FIFOs stay in distributed RAM");
    }

    #[test]
    fn deep_fifos_move_to_bram() {
        let r = Uart::new(1024).synthesize(Family::Virtex5);
        assert!(r.brams >= 1);
    }

    #[test]
    fn fits_a_single_clb_column_prr() {
        // One Virtex-5 CLB column row holds 20 CLBs = 160 pair slots.
        let r = Uart::standard().synthesize(Family::Virtex5);
        let clb_req = r
            .lut_ff_pairs
            .div_ceil(u64::from(Family::Virtex5.params().lut_clb));
        assert!(clb_req <= 20, "CLB_req {clb_req}");
    }
}
