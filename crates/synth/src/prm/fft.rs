//! Pipelined radix-2 FFT PRM (extension beyond the paper's three modules).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A streaming radix-2 single-delay-feedback FFT: one butterfly (complex
/// multiply = 3 real multiplies) per stage, delay lines in BRAM. A "DSP +
/// BRAM heavy" point in the PRM space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FftCore {
    /// Transform length (power of two).
    pub points: u32,
    /// Sample width in bits per real/imaginary component.
    pub width: u32,
}

impl FftCore {
    /// 1024-point, 16-bit core.
    pub fn standard() -> Self {
        FftCore {
            points: 1024,
            width: 16,
        }
    }

    /// A custom core; `points` is rounded up to a power of two.
    pub fn new(points: u32, width: u32) -> Self {
        FftCore {
            points: points.next_power_of_two(),
            width,
        }
    }

    /// Number of pipeline stages = log2(points).
    pub fn stages(&self) -> u32 {
        self.points.trailing_zeros()
    }
}

impl PrmGenerator for FftCore {
    fn name(&self) -> String {
        format!("fft{}x{}", self.points, self.width)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        let stages = self.stages();
        // Delay feedback memory: sum over stages of 2^s complex samples.
        let delay_bits = u64::from(self.points.saturating_sub(1)) * u64::from(self.width) * 2;
        // Twiddle ROMs: one complex factor per stage entry.
        let twiddle_bits = u64::from(self.points / 2) * u64::from(self.width) * 2;
        OpCounts {
            // 3 real multiplies per stage butterfly.
            mults: stages * 3,
            mult_width: self.width,
            symmetric_mults: false,
            // Complex add/sub per butterfly: 4 real adders.
            adders: stages * 4,
            add_width: self.width + 2,
            register_bits: u64::from(stages) * u64::from(self.width) * 8 + 64,
            fsm_states: 4,
            muxes: stages,
            mux_width: self.width * 2,
            mux_inputs: 2,
            mem_bits: delay_bits + twiddle_bits,
            misc_luts: u64::from(stages) * 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_is_log2() {
        assert_eq!(FftCore::standard().stages(), 10);
        assert_eq!(FftCore::new(1000, 16).points, 1024);
    }

    #[test]
    fn dsp_and_bram_heavy() {
        let r = FftCore::standard().synthesize(Family::Virtex5);
        assert_eq!(r.dsps, 30, "10 stages x 3 multiplies");
        assert!(r.brams >= 1);
        r.validate().unwrap();
    }

    #[test]
    fn longer_transforms_need_more_memory() {
        let small = FftCore::new(256, 16).synthesize(Family::Virtex5);
        let large = FftCore::new(4096, 16).synthesize(Family::Virtex5);
        assert!(large.brams > small.brams);
        assert!(large.dsps > small.dsps);
    }
}
