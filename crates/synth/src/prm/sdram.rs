//! SDRAM controller PRM (the paper's `SDRAM`).

use crate::mapping::OpCounts;
use crate::prm::PrmGenerator;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// A synchronous DRAM controller: command/refresh state machines, address
/// multiplexing and timing counters, and registered data paths. Control
/// heavy — lots of FFs, few LUTs, no DSPs or BRAMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdramController {
    /// Data bus width in bits.
    pub data_width: u32,
    /// Row/column address width in bits.
    pub addr_width: u32,
}

impl SdramController {
    /// The paper's instance: a 32-bit controller (§IV).
    pub fn paper() -> Self {
        SdramController {
            data_width: 32,
            addr_width: 13,
        }
    }

    /// A custom controller.
    pub fn new(data_width: u32, addr_width: u32) -> Self {
        SdramController {
            data_width,
            addr_width,
        }
    }
}

impl PrmGenerator for SdramController {
    fn name(&self) -> String {
        format!("sdram{}", self.data_width)
    }

    fn op_counts(&self, _family: Family) -> OpCounts {
        OpCounts {
            mults: 0,
            mult_width: 0,
            symmetric_mults: false,
            // Refresh interval counter + burst address incrementer.
            adders: 2,
            add_width: self.addr_width,
            // Registered data in/out, address pipeline, timing counters.
            register_bits: u64::from(self.data_width) * 7 + u64::from(self.addr_width) * 4 + 16,
            // Command FSM (init, refresh, activate, read, write, precharge
            // sequencing).
            fsm_states: 20,
            muxes: 0,
            mux_width: 0,
            mux_inputs: 0,
            mem_bits: 0,
            misc_luts: u64::from(self.data_width) * 2 + 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_synth_report;
    use crate::prm::PaperPrm;

    #[test]
    fn paper_instance_matches_lut_ff_counts() {
        let sdram = SdramController::paper();
        let v5 = sdram.synthesize(Family::Virtex5);
        let paper = paper_synth_report(PaperPrm::Sdram, Family::Virtex5).unwrap();
        assert_eq!(v5.luts, paper.luts, "157 control LUTs");
        assert_eq!(v5.ffs, paper.ffs, "292 registers");
        assert_eq!(v5.dsps, 0);
        assert_eq!(v5.brams, 0);
    }

    #[test]
    fn control_heavy_profile() {
        let r = SdramController::paper().synthesize(Family::Virtex5);
        assert!(r.ffs > r.luts, "SDRAM controllers are register-dominated");
    }

    #[test]
    fn wider_bus_costs_more() {
        let narrow = SdramController::new(16, 13).synthesize(Family::Virtex5);
        let wide = SdramController::new(64, 13).synthesize(Family::Virtex5);
        assert!(wide.ffs > narrow.ffs);
        assert!(wide.luts > narrow.luts);
    }
}
