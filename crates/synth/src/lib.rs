//! # `synth` — synthesis substrate
//!
//! The paper's cost models take their inputs from Xilinx XST synthesis
//! reports: the PRM's `LUT_FF_req`, `LUT_req`, `FF_req`, `DSP_req` and
//! `BRAM_req` (Table I). XST is proprietary and unavailable here, so this
//! crate supplies everything around that input:
//!
//! * [`SynthReport`] — the structured report, with the paper's slice-pair
//!   algebra (`LUT_FF_req` decomposes into fully-used pairs, pairs with an
//!   unused FF, and pairs with an unused LUT) as checked invariants.
//! * [`xst`] — an XST-`.syr`-style plain-text writer and parser, so the
//!   models can be driven from report files exactly as a designer would.
//! * [`netlist`] — a small structural IR (slice pair-slots, DSPs, BRAMs,
//!   synthetic connectivity) consumed by the simulated place-and-route flow
//!   in `parflow`.
//! * [`prm`] — parametric architecture generators for PR modules: the three
//!   the paper evaluates (32-tap FIR, 5-stage MIPS R3000, 32-bit SDRAM
//!   controller) plus extras (AES-128 round engine, radix-2 FFT, generic),
//!   each mapping first-principles operator counts to family resources.
//! * [`calibration`] — the paper's exact synthesis and post-PAR resource
//!   numbers for the three evaluated PRMs on Virtex-5 LX110T and Virtex-6
//!   LX75T (reconstructed in `DESIGN.md` §5), used to pin the generators to
//!   the paper's inputs on those families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod mapping;
pub mod netlist;
pub mod prm;
pub mod report;
pub mod xst;

pub use calibration::{paper_post_par_report, paper_synth_report};
pub use netlist::{Cell, CellKind, Net, Netlist};
pub use prm::{GenericPrm, PaperPrm, PrmGenerator};
pub use report::{ReportError, SynthReport};
