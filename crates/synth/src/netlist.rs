//! Structural netlist IR consumed by the simulated place-and-route flow.
//!
//! The IR mirrors what the cost models can see of a synthesized PRM: slice
//! LUT–FF *pair slots* (each holding a LUT, an FF, or both), DSP blocks and
//! BRAMs, plus synthetic connectivity (nets) that gives the placer a
//! wirelength objective. Connectivity is generated deterministically from a
//! seed: local chains (datapath structure) plus moderate-fanout control
//! nets.

use crate::report::SynthReport;
use fabric::Family;
use serde::{Deserialize, Serialize};

/// Kind of one netlist cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// A slice LUT–FF pair slot; `lut`/`ff` say which members are used.
    Slice {
        /// LUT member used.
        lut: bool,
        /// FF member used.
        ff: bool,
    },
    /// A DSP block.
    Dsp,
    /// A block RAM.
    Bram,
}

impl CellKind {
    /// True for slice pair slots.
    pub fn is_slice(self) -> bool {
        matches!(self, CellKind::Slice { .. })
    }
}

/// One netlist cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Cell kind.
    pub kind: CellKind,
}

/// A net: the set of cells it connects (by index into [`Netlist::cells`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Connected cell indices.
    pub pins: Vec<u32>,
}

impl Net {
    /// Half-perimeter style span of the net given per-cell positions.
    pub fn is_trivial(&self) -> bool {
        self.pins.len() < 2
    }
}

/// A synthesized PRM at structural granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// Target family.
    pub family: Family,
    /// All cells.
    pub cells: Vec<Cell>,
    /// All nets.
    pub nets: Vec<Net>,
}

/// Minimal deterministic RNG (splitmix64) so the crate stays
/// dependency-light; used only for synthetic connectivity.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

impl Netlist {
    /// Materialize a netlist whose cell tallies equal `report`, with
    /// synthetic connectivity seeded by `seed`.
    pub fn from_report(report: &SynthReport, seed: u64) -> Result<Netlist, crate::ReportError> {
        let b = report.breakdown()?;
        let mut cells = Vec::with_capacity((b.pairs() + report.dsps + report.brams) as usize);
        for _ in 0..b.fully_used {
            cells.push(Cell {
                kind: CellKind::Slice {
                    lut: true,
                    ff: true,
                },
            });
        }
        for _ in 0..b.unused_ff {
            cells.push(Cell {
                kind: CellKind::Slice {
                    lut: true,
                    ff: false,
                },
            });
        }
        for _ in 0..b.unused_lut {
            cells.push(Cell {
                kind: CellKind::Slice {
                    lut: false,
                    ff: true,
                },
            });
        }
        for _ in 0..report.dsps {
            cells.push(Cell {
                kind: CellKind::Dsp,
            });
        }
        for _ in 0..report.brams {
            cells.push(Cell {
                kind: CellKind::Bram,
            });
        }

        let nets = synth_connectivity(cells.len() as u32, seed);
        Ok(Netlist {
            name: report.module.clone(),
            family: report.family,
            cells,
            nets,
        })
    }

    /// Recount the netlist into a synthesis report (inverse of
    /// [`from_report`](Self::from_report) up to connectivity).
    pub fn to_report(&self) -> SynthReport {
        let mut pairs = 0u64;
        let mut luts = 0u64;
        let mut ffs = 0u64;
        let mut dsps = 0u64;
        let mut brams = 0u64;
        for c in &self.cells {
            match c.kind {
                CellKind::Slice { lut, ff } => {
                    pairs += 1;
                    luts += u64::from(lut);
                    ffs += u64::from(ff);
                }
                CellKind::Dsp => dsps += 1,
                CellKind::Bram => brams += 1,
            }
        }
        SynthReport::new(
            self.name.clone(),
            self.family,
            pairs,
            luts,
            ffs,
            dsps,
            brams,
        )
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Chains of neighbouring cells (2-pin nets) plus one moderate-fanout net
/// per 16 cells, all deterministic in `seed`.
fn synth_connectivity(n_cells: u32, seed: u64) -> Vec<Net> {
    let mut nets = Vec::new();
    if n_cells < 2 {
        return nets;
    }
    for i in 0..n_cells - 1 {
        nets.push(Net {
            pins: vec![i, i + 1],
        });
    }
    let mut rng = SplitMix64(seed ^ 0xD1CE);
    let fanout_nets = n_cells / 16;
    for _ in 0..fanout_nets {
        let driver = rng.below(u64::from(n_cells)) as u32;
        let mut pins = vec![driver];
        let sinks = 2 + rng.below(5) as usize;
        for _ in 0..sinks {
            pins.push(rng.below(u64::from(n_cells)) as u32);
        }
        pins.sort_unstable();
        pins.dedup();
        if pins.len() >= 2 {
            nets.push(Net { pins });
        }
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SynthReport {
        SynthReport::new("m", Family::Virtex5, 1300, 1150, 394, 32, 6)
    }

    #[test]
    fn from_report_round_trips_counts() {
        let nl = Netlist::from_report(&report(), 7).unwrap();
        let back = nl.to_report();
        assert_eq!(back.lut_ff_pairs, 1300);
        assert_eq!(back.luts, 1150);
        assert_eq!(back.ffs, 394);
        assert_eq!(back.dsps, 32);
        assert_eq!(back.brams, 6);
        assert_eq!(nl.len(), 1300 + 32 + 6);
    }

    #[test]
    fn connectivity_is_deterministic() {
        let a = Netlist::from_report(&report(), 42).unwrap();
        let b = Netlist::from_report(&report(), 42).unwrap();
        assert_eq!(a, b);
        let c = Netlist::from_report(&report(), 43).unwrap();
        assert_ne!(a.nets, c.nets);
    }

    #[test]
    fn nets_reference_valid_cells() {
        let nl = Netlist::from_report(&report(), 1).unwrap();
        let n = nl.len() as u32;
        for net in &nl.nets {
            assert!(net.pins.len() >= 2);
            assert!(net.pins.iter().all(|&p| p < n));
        }
    }

    #[test]
    fn invalid_report_is_rejected() {
        let bad = SynthReport::new("m", Family::Virtex5, 10, 20, 30, 0, 0);
        assert!(Netlist::from_report(&bad, 0).is_err());
    }

    #[test]
    fn empty_and_single_cell_netlists() {
        let empty = SynthReport::new("e", Family::Virtex5, 0, 0, 0, 0, 0);
        let nl = Netlist::from_report(&empty, 0).unwrap();
        assert!(nl.is_empty());
        assert!(nl.nets.is_empty());

        let one = SynthReport::new("o", Family::Virtex5, 0, 0, 0, 1, 0);
        let nl = Netlist::from_report(&one, 0).unwrap();
        assert_eq!(nl.len(), 1);
        assert!(nl.nets.is_empty());
    }
}
