//! Paper-exact resource numbers for the evaluated PRMs.
//!
//! The paper reports (Table V) the XST synthesis resource requirements and
//! (Table VI) the post-place-and-route requirements of three PRMs — a
//! 32-coefficient FIR filter, a 5-stage MIPS R3000, and a 32-bit SDRAM
//! controller — on the Virtex-5 LX110T and Virtex-6 LX75T. Table V's raw
//! cells were lost in the available transcription; they are reconstructed
//! algebraically from Table VI's values and savings percentages, and
//! cross-checked against every surviving utilization percentage
//! (`DESIGN.md` §5).
//!
//! These constants calibrate the [`crate::prm`] generators on the two
//! evaluated families, so the cost models are driven by exactly the inputs
//! the paper used.

use crate::prm::PaperPrm;
use crate::report::SynthReport;
use fabric::Family;

/// Paper synthesis-report numbers (reconstructed Table V) for `prm` on
/// `family`, or `None` for families the paper did not evaluate.
pub fn paper_synth_report(prm: PaperPrm, family: Family) -> Option<SynthReport> {
    // (lut_ff_pairs, luts, ffs, dsps, brams)
    let (p, l, f, d, b) = match (prm, family) {
        (PaperPrm::Fir, Family::Virtex5) => (1300, 1150, 394, 32, 0),
        (PaperPrm::Mips, Family::Virtex5) => (2618, 1527, 1592, 4, 6),
        (PaperPrm::Sdram, Family::Virtex5) => (332, 157, 292, 0, 0),
        (PaperPrm::Fir, Family::Virtex6) => (1467, 1316, 394, 27, 0),
        (PaperPrm::Mips, Family::Virtex6) => (3239, 2095, 1860, 4, 6),
        (PaperPrm::Sdram, Family::Virtex6) => (385, 181, 324, 0, 0),
        _ => return None,
    };
    Some(SynthReport::new(prm.module_name(), family, p, l, f, d, b))
}

/// Paper post-place-and-route numbers (Table VI) for `prm` on `family`.
///
/// The Xilinx tools optimize during PAR, usually shrinking LUT/pair counts
/// (and occasionally growing FFs via replication, e.g. FIR on Virtex-5).
/// DSP and BRAM counts never change (paper: "0% change").
pub fn paper_post_par_report(prm: PaperPrm, family: Family) -> Option<SynthReport> {
    let (p, l, f, d, b) = match (prm, family) {
        (PaperPrm::Fir, Family::Virtex5) => (1082, 1015, 410, 32, 0),
        (PaperPrm::Mips, Family::Virtex5) => (2183, 1528, 1592, 4, 6),
        (PaperPrm::Sdram, Family::Virtex5) => (324, 191, 292, 0, 0),
        (PaperPrm::Fir, Family::Virtex6) => (999, 999, 394, 27, 0),
        (PaperPrm::Mips, Family::Virtex6) => (2630, 1932, 1860, 4, 6),
        (PaperPrm::Sdram, Family::Virtex6) => (370, 215, 324, 0, 0),
        _ => return None,
    };
    Some(SynthReport::new(prm.module_name(), family, p, l, f, d, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRMS: [PaperPrm; 3] = [PaperPrm::Fir, PaperPrm::Mips, PaperPrm::Sdram];
    const FAMILIES: [Family; 2] = [Family::Virtex5, Family::Virtex6];

    #[test]
    fn all_calibrated_reports_are_internally_consistent() {
        for prm in PRMS {
            for fam in FAMILIES {
                paper_synth_report(prm, fam).unwrap().validate().unwrap();
                paper_post_par_report(prm, fam).unwrap().validate().unwrap();
            }
        }
    }

    #[test]
    fn unevaluated_families_return_none() {
        assert!(paper_synth_report(PaperPrm::Fir, Family::Virtex4).is_none());
        assert!(paper_post_par_report(PaperPrm::Mips, Family::Series7).is_none());
    }

    /// Recompute every savings percentage in Table VI from the calibrated
    /// values and compare with the paper's printed percentages.
    #[test]
    fn table6_savings_percentages_reproduce() {
        // (prm, family, pairs%, luts%, ffs%)
        let expected = [
            (PaperPrm::Fir, Family::Virtex5, 16.8, 11.7, -4.1),
            (PaperPrm::Mips, Family::Virtex5, 16.6, -0.1, 0.0),
            (PaperPrm::Sdram, Family::Virtex5, 2.4, -21.7, 0.0),
            (PaperPrm::Fir, Family::Virtex6, 31.9, 24.1, 0.0),
            (PaperPrm::Mips, Family::Virtex6, 18.8, 7.8, 0.0),
            (PaperPrm::Sdram, Family::Virtex6, 3.9, -18.8, 0.0),
        ];
        for (prm, fam, sp, sl, sf) in expected {
            let synth = paper_synth_report(prm, fam).unwrap();
            let post = paper_post_par_report(prm, fam).unwrap();
            let gp = post.saving_pct(&synth, |r| r.lut_ff_pairs);
            let gl = post.saving_pct(&synth, |r| r.luts);
            let gf = post.saving_pct(&synth, |r| r.ffs);
            assert!((gp - sp).abs() < 0.1, "{prm:?}/{fam}: pairs {gp} vs {sp}");
            assert!((gl - sl).abs() < 0.1, "{prm:?}/{fam}: luts {gl} vs {sl}");
            assert!((gf - sf).abs() < 0.1, "{prm:?}/{fam}: ffs {gf} vs {sf}");
        }
    }

    /// DSP and BRAM counts are identical pre/post PAR (paper: 0% change).
    #[test]
    fn dsp_bram_unchanged_by_par() {
        for prm in PRMS {
            for fam in FAMILIES {
                let synth = paper_synth_report(prm, fam).unwrap();
                let post = paper_post_par_report(prm, fam).unwrap();
                assert_eq!(synth.dsps, post.dsps);
                assert_eq!(synth.brams, post.brams);
            }
        }
    }

    /// CLB_req = ceil(LUT_FF_req / LUT_CLB) must reproduce the paper's
    /// Table VI CLB_req row (136, 273, 41, 125, 329, 47).
    #[test]
    fn table6_clb_req_reproduces() {
        let expected = [
            (PaperPrm::Fir, Family::Virtex5, 136),
            (PaperPrm::Mips, Family::Virtex5, 273),
            (PaperPrm::Sdram, Family::Virtex5, 41),
            (PaperPrm::Fir, Family::Virtex6, 125),
            (PaperPrm::Mips, Family::Virtex6, 329),
            (PaperPrm::Sdram, Family::Virtex6, 47),
        ];
        for (prm, fam, clb) in expected {
            let post = paper_post_par_report(prm, fam).unwrap();
            let lut_clb = u64::from(fam.params().lut_clb);
            assert_eq!(post.lut_ff_pairs.div_ceil(lut_clb), clb, "{prm:?}/{fam}");
        }
    }
}
