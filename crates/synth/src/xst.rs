//! XST-style synthesis report text: writer and parser.
//!
//! The paper's methodology is "synthesize the PRM with XST, read five
//! numbers out of the report, feed them to the formulas". This module
//! reproduces that interface: [`write_report`] renders a `.syr`-style
//! *Device utilization summary* and [`parse_report`] recovers a
//! [`SynthReport`] from one, so the cost models can be driven from report
//! files exactly as a designer would drive them.

use crate::report::SynthReport;
use core::fmt;
use fabric::Family;

/// Errors from [`parse_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XstParseError {
    /// A required line was missing from the report.
    MissingField(&'static str),
    /// A count could not be parsed as an integer.
    BadCount {
        /// The field whose value was malformed.
        field: &'static str,
        /// The offending text.
        text: String,
    },
    /// The family string was not recognized.
    UnknownFamily(String),
    /// The recovered numbers violate the slice-pair algebra.
    Inconsistent(crate::report::ReportError),
}

impl fmt::Display for XstParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XstParseError::MissingField(k) => write!(f, "report is missing `{k}`"),
            XstParseError::BadCount { field, text } => {
                write!(f, "could not parse count for `{field}` from {text:?}")
            }
            XstParseError::UnknownFamily(s) => write!(f, "unknown family {s:?}"),
            XstParseError::Inconsistent(e) => write!(f, "inconsistent report: {e}"),
        }
    }
}

impl std::error::Error for XstParseError {}

/// DSP primitive name per family, as XST prints it.
fn dsp_primitive(family: Family) -> &'static str {
    match family {
        Family::Virtex4 => "DSP48s",
        Family::Virtex5 => "DSP48Es",
        Family::Virtex6 | Family::Series7 => "DSP48E1s",
        Family::Spartan6 => "DSP48A1s",
    }
}

/// Render `report` as an XST-`.syr`-style device utilization summary.
pub fn write_report(report: &SynthReport, device: &str) -> String {
    let b = report
        .breakdown()
        .expect("write_report requires an internally consistent report");
    let mut out = String::with_capacity(1024);
    out.push_str("Release 12.4 - xst M.81d (lin64)\n");
    out.push_str("Copyright (c) 1995-2010 Xilinx, Inc.  All rights reserved.\n\n");
    out.push_str(&format!("* Design            : {}\n", report.module));
    out.push_str(&format!(
        "* Family            : {}\n\n",
        report.family.name()
    ));
    out.push_str("Device utilization summary:\n");
    out.push_str("---------------------------\n\n");
    out.push_str(&format!("Selected Device : {device}\n\n"));
    out.push_str("Slice Logic Utilization:\n");
    out.push_str(&format!(
        " Number of Slice Registers:        {:>8}\n",
        report.ffs
    ));
    out.push_str(&format!(
        " Number of Slice LUTs:             {:>8}\n\n",
        report.luts
    ));
    out.push_str("Slice Logic Distribution:\n");
    out.push_str(&format!(
        " Number of LUT Flip Flop pairs used:{:>8}\n",
        report.lut_ff_pairs
    ));
    out.push_str(&format!(
        "   Number with an unused Flip Flop: {:>8}\n",
        b.unused_ff
    ));
    out.push_str(&format!(
        "   Number with an unused LUT:       {:>8}\n",
        b.unused_lut
    ));
    out.push_str(&format!(
        "   Number of fully used LUT-FF pairs:{:>7}\n\n",
        b.fully_used
    ));
    out.push_str("Specific Feature Utilization:\n");
    out.push_str(&format!(
        " Number of Block RAM/FIFO:         {:>8}\n",
        report.brams
    ));
    out.push_str(&format!(
        " Number of {}:              {:>8}\n",
        dsp_primitive(report.family),
        report.dsps
    ));
    out
}

fn grab(text: &str, key: &'static str) -> Result<u64, XstParseError> {
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix(key) {
            let value = rest.trim_start_matches(':').trim();
            // Take the first whitespace-delimited token (ignores trailing
            // "out of N  P%" clauses real XST reports append).
            let token = value.split_whitespace().next().unwrap_or("");
            let digits: String = token.chars().filter(|c| c.is_ascii_digit()).collect();
            return digits.parse().map_err(|_| XstParseError::BadCount {
                field: key,
                text: value.to_string(),
            });
        }
    }
    Err(XstParseError::MissingField(key))
}

fn grab_dsps(text: &str) -> Result<u64, XstParseError> {
    for key in [
        "Number of DSP48E1s",
        "Number of DSP48Es",
        "Number of DSP48A1s",
        "Number of DSP48s",
    ] {
        for line in text.lines() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix(key) {
                let value = rest.trim_start_matches(':').trim();
                let token = value.split_whitespace().next().unwrap_or("");
                return token.parse().map_err(|_| XstParseError::BadCount {
                    field: "Number of DSP48*",
                    text: value.to_string(),
                });
            }
        }
    }
    // Reports for pure-logic designs may omit the DSP line entirely.
    Ok(0)
}

fn grab_family(text: &str) -> Result<Family, XstParseError> {
    for line in text.lines() {
        let trimmed = line.trim_start().trim_start_matches('*').trim_start();
        if let Some(rest) = trimmed.strip_prefix("Family") {
            let name = rest.trim_start().trim_start_matches(':').trim();
            return match name {
                "Virtex-4" | "virtex4" => Ok(Family::Virtex4),
                "Virtex-5" | "virtex5" => Ok(Family::Virtex5),
                "Virtex-6" | "virtex6" => Ok(Family::Virtex6),
                "7-series" | "Artix-7" | "Kintex-7" | "Virtex-7" | "Zynq-7000" => {
                    Ok(Family::Series7)
                }
                "Spartan-6" | "spartan6" => Ok(Family::Spartan6),
                other => Err(XstParseError::UnknownFamily(other.to_string())),
            };
        }
    }
    Err(XstParseError::MissingField("Family"))
}

fn grab_module(text: &str) -> String {
    for line in text.lines() {
        let trimmed = line.trim_start().trim_start_matches('*').trim_start();
        if let Some(rest) = trimmed.strip_prefix("Design") {
            return rest.trim_start().trim_start_matches(':').trim().to_string();
        }
    }
    "unknown".to_string()
}

/// Parse a `.syr`-style report back into a [`SynthReport`].
///
/// ```
/// use synth::xst::{parse_report, write_report};
/// use synth::PaperPrm;
/// use fabric::Family;
///
/// let report = PaperPrm::Fir.synth_report(Family::Virtex5);
/// let text = write_report(&report, "xc5vlx110t");
/// assert_eq!(parse_report(&text)?, report);
/// # Ok::<(), synth::xst::XstParseError>(())
/// ```
pub fn parse_report(text: &str) -> Result<SynthReport, XstParseError> {
    let family = grab_family(text)?;
    let ffs = grab(text, "Number of Slice Registers")?;
    let luts = grab(text, "Number of Slice LUTs")?;
    let pairs = grab(text, "Number of LUT Flip Flop pairs used")?;
    let brams = grab(text, "Number of Block RAM/FIFO").unwrap_or(0);
    let dsps = grab_dsps(text)?;
    let report = SynthReport::new(grab_module(text), family, pairs, luts, ffs, dsps, brams);
    report.validate().map_err(XstParseError::Inconsistent)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_synth_report;
    use crate::prm::PaperPrm;

    #[test]
    fn round_trip_all_paper_reports() {
        for prm in PaperPrm::ALL {
            for (fam, dev) in [
                (Family::Virtex5, "xc5vlx110t"),
                (Family::Virtex6, "xc6vlx75t"),
            ] {
                let original = paper_synth_report(prm, fam).unwrap();
                let text = write_report(&original, dev);
                let parsed = parse_report(&text).unwrap();
                assert_eq!(parsed, original, "{prm:?}/{fam}");
            }
        }
    }

    #[test]
    fn writer_renders_paper_breakdown() {
        let fir = paper_synth_report(PaperPrm::Fir, Family::Virtex5).unwrap();
        let text = write_report(&fir, "xc5vlx110t");
        assert!(text.contains("Number with an unused Flip Flop:      906"));
        assert!(text.contains("Number with an unused LUT:            150"));
        assert!(text.contains("Number of fully used LUT-FF pairs:    244"));
        assert!(text.contains("Number of DSP48Es"));
    }

    #[test]
    fn parser_tolerates_out_of_clauses() {
        let text = "\
* Design : m
* Family : Virtex-5
 Number of Slice Registers:   100 out of 69120  0%
 Number of Slice LUTs:        200 out of 69120  0%
 Number of LUT Flip Flop pairs used: 250
 Number of Block RAM/FIFO:  2 out of 148  1%
 Number of DSP48Es:  4 out of 64  6%
";
        let r = parse_report(text).unwrap();
        assert_eq!(
            (r.ffs, r.luts, r.lut_ff_pairs, r.brams, r.dsps),
            (100, 200, 250, 2, 4)
        );
    }

    #[test]
    fn parser_defaults_missing_dsp_and_bram_to_zero() {
        let text = "\
* Design : m
* Family : Virtex-6
 Number of Slice Registers: 10
 Number of Slice LUTs: 20
 Number of LUT Flip Flop pairs used: 25
";
        let r = parse_report(text).unwrap();
        assert_eq!(r.dsps, 0);
        assert_eq!(r.brams, 0);
        assert_eq!(r.family, Family::Virtex6);
    }

    #[test]
    fn parser_rejects_missing_and_inconsistent() {
        assert!(matches!(
            parse_report("* Family : Virtex-5\n"),
            Err(XstParseError::MissingField(_))
        ));
        assert!(matches!(
            parse_report("nothing here"),
            Err(XstParseError::MissingField("Family"))
        ));
        let inconsistent = "\
* Family : Virtex-5
 Number of Slice Registers: 100
 Number of Slice LUTs: 100
 Number of LUT Flip Flop pairs used: 10
";
        assert!(matches!(
            parse_report(inconsistent),
            Err(XstParseError::Inconsistent(_))
        ));
        assert!(matches!(
            parse_report("* Family : Spartan-9\n"),
            Err(XstParseError::UnknownFamily(_))
        ));
    }
}
