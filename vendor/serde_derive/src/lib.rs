//! Offline shim of `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`, so it builds with no network access)
//! derive macros for the vendored `serde` facade in `vendor/serde`. The
//! supported input grammar is exactly what this workspace uses: plain
//! structs with named fields, tuple/unit structs, and enums whose variants
//! are unit (optionally with discriminants), newtype, tuple, or
//! struct-shaped. Generic types are rejected with a clear error.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected `struct` or `enum`, found `{t}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected type name, found `{t}`"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic types are not supported (type `{name}`)");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde shim: expected enum body, found `{t:?}`"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };

    Item { name, kind }
}

/// Skip any number of outer attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the field names. Types
/// are skipped wholesale (commas inside angle brackets are tracked; other
/// bracket kinds arrive as single `Group` tokens).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde shim: expected field name, found `{t}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde shim: expected `:` after field `{fname}`, found `{t}`"),
        }
        skip_type(&tokens, &mut i);
        fields.push(fname);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket depth
/// aware) or the end of the stream.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde shim: expected variant name, found `{t}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_top_level_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` (unit variants only).
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i); // same "until top-level comma" rule
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name: vname, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\", ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "::serde::Value::from_entries(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "::serde::Value::from_items(::std::vec![{}])",
                items.join(", ")
            )
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!("{name}::{vn} => ::serde::Value::text(\"{vn}\"),"),
                        Shape::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::tagged(\"{vn}\", \
                             ::serde::Serialize::to_value(__f0)),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::tagged(\"{vn}\", \
                                 ::serde::Value::from_items(::std::vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!("(\"{f}\", ::serde::Serialize::to_value({f}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::tagged(\"{vn}\", \
                                 ::serde::Value::from_entries(::std::vec![{}])),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__v, \"{f}\")?"))
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::__index(__v, {k})?"))
                .collect();
            format!("::core::result::Result::Ok({name}({}))", inits.join(", "))
        }
        ItemKind::UnitStruct => format!("::core::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                        ),
                        Shape::Newtype => format!(
                            "\"{vn}\" => {{ let __p = ::serde::__payload(__payload, \"{vn}\")?; \
                             ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__p)?)) }}"
                        ),
                        Shape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::__index(__p, {k})?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = ::serde::__payload(__payload, \"{vn}\")?; \
                                 ::core::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__field(__p, \"{f}\")?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = ::serde::__payload(__payload, \"{vn}\")?; \
                                 ::core::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::__enum_parts(__v)?;\n\
                 match __tag {{\n{}\n__other => ::core::result::Result::Err(\
                 ::serde::DeError::new(::std::format!(\
                 \"unknown variant `{{}}` of `{name}`\", __other))) }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
