//! Offline shim of `proptest`'s strategy/macro surface.
//!
//! Keeps the API the workspace's property tests use — `proptest!`,
//! `prop_oneof!`, `prop_assert*`, range/tuple/`Just`/`any` strategies,
//! `prop_map`/`prop_filter`, `collection::vec` — over a deterministic
//! splitmix64 generator. No shrinking: a failing case reports the seed
//! and case index instead.

#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: runs each `#[test]` body over `cases`
/// generated inputs. Failing cases panic with the case index so runs
/// (which are deterministic) can be replayed under a debugger.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::test_runner::base_seed(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::from_seed(__seed ^ u64::from(__case));
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > { $body Ok(()) })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {}/{} failed: {}", __case, __config.cases, msg);
                    }
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies of a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm(1, $strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}
