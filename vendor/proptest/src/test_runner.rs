//! Test-runner support: config, case errors, and the deterministic RNG.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by a filter) — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Stable per-test seed derived from the test name (FNV-1a), so every
/// run of a given test generates the same cases.
pub fn base_seed(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic generator (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant for test generation purposes.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
