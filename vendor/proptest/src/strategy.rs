//! Strategies: deterministic value generators with combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// `generate` is object-safe so heterogeneous strategies can be boxed
/// into a [`Union`] (the `prop_oneof!` backing type); the combinators
/// require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Keep only values for which `pred` holds, regenerating otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_filter` combinator: rejection sampling with a retry cap.
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.base.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive candidates",
            self.reason
        );
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be 0.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs at least one arm with non-zero weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Box one `prop_oneof!` arm (helper so the macro can rely on
/// inference for the common value type).
pub fn union_arm<T, S>(weight: u32, strat: S) -> (u32, Box<dyn Strategy<Value = T>>)
where
    S: Strategy<Value = T> + 'static,
{
    (weight, Box::new(strat))
}

// ------------------------------------------------------ range strategies

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = u64::from(self.end - self.start);
                self.start + rng.below(width) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = u64::from(self.end() - self.start());
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start() + rng.below(width + 1) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64);

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let width = (self.end - self.start) as u64;
        self.start + rng.below(width) as usize
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(width) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------ tuple strategies

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ----------------------------------------------------------- collections

/// Strategy for `Vec`s with lengths drawn from `len`.
pub struct VecStrategy<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// `proptest::collection::vec`: vectors of `elem` values with length in
/// `len`.
pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}
