//! Offline shim of the small `rand` surface the workspace could need:
//! `StdRng::seed_from_u64` + `Rng::gen_range`, deterministic splitmix64
//! underneath.

#![allow(clippy::all)]

pub mod rngs {
    pub use crate::StdRng;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

/// Core random-value methods.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty gen_range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// Uniform float in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A non-cryptographic "thread rng": seeded from the thread id hash so
/// distinct threads differ, but fully deterministic within a thread.
pub fn thread_rng() -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}
