//! Offline shim of `criterion`'s harness surface.
//!
//! Runs each benchmark for a fixed number of timed iterations after a
//! short warm-up and prints mean wall-clock time per iteration (plus
//! throughput when configured). No statistics, plots, or baselines —
//! just enough to run `cargo bench` offline and compare runs by eye.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Re-exported for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// Unit used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Report throughput alongside time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&label, self.sample_size.unwrap_or(100), self.throughput, f);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample per invocation batch.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up and batch sizing: aim for samples of at least ~100us so
        // Instant overhead stays in the noise.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_micros(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
        self.iters_per_sample = iters;
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {label}: no samples (b.iter was never called)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let iters = bencher.iters_per_sample.max(1) * bencher.samples.len() as u64;
    let per_iter_ns = total.as_nanos() as f64 / iters as f64;
    let mut line = format!("  {label}: {} per iter", format_ns(per_iter_ns));
    if let Some(tp) = throughput {
        let per_sec = 1.0e9 / per_iter_ns;
        match tp {
            Throughput::Bytes(n) => {
                let mib = n as f64 * per_sec / (1024.0 * 1024.0);
                line.push_str(&format!(", {mib:.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", n as f64 * per_sec));
            }
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
