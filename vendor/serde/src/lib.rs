//! Offline shim of the `serde` facade.
//!
//! This workspace vendors its dependencies because the build environment
//! has no network access to a crates.io registry. The shim keeps the
//! surface the workspace actually uses — `#[derive(Serialize, Deserialize)]`
//! plus the `serde_json` functions — but trades serde's zero-copy
//! `Serializer`/`Deserializer` machinery for a simple JSON-like
//! [`Value`] tree: `Serialize` renders into a `Value`, `Deserialize`
//! reconstructs from one. Round-trips through `serde_json` are exact for
//! every type the workspace serializes.

#![allow(clippy::all)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::BTreeMap;
use std::time::Duration;

/// Serialization into the shim's [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// New error with `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// ------------------------------------------------------- derive helpers

/// Look up struct field `name` in an object value (derive helper).
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::from_value(f),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

/// Look up element `idx` of an array value (derive helper).
pub fn __index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(DeError::new(format!("missing tuple element {idx}"))),
        },
        other => Err(DeError::new(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

/// Split an externally tagged enum value into `(tag, payload)` (derive
/// helper). Unit variants arrive as plain strings; data-carrying variants
/// as single-entry objects.
pub fn __enum_parts(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Object(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(DeError::new(format!(
            "expected enum (string or single-entry object), found {}",
            other.kind()
        ))),
    }
}

/// Unwrap a variant payload that must be present (derive helper).
pub fn __payload<'v>(payload: Option<&'v Value>, variant: &str) -> Result<&'v Value, DeError> {
    payload.ok_or_else(|| DeError::new(format!("variant `{variant}` is missing its payload")))
}

// ------------------------------------------------------------ std impls

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64()?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64()?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // `Value` carries integers as u64; wider values degrade to float
        // (matching the shim's JSON number range).
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64().map(u128::from)
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_i64().map(i128::from)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(inner) => Value::tagged("Ok", inner.to_value()),
            Err(inner) => Value::tagged("Err", inner.to_value()),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, payload) = __enum_parts(v)?;
        let payload = __payload(payload, tag)?;
        match tag {
            "Ok" => T::from_value(payload).map(Ok),
            "Err" => E::from_value(payload).map(Err),
            other => Err(DeError::new(format!("unknown Result variant `{other}`"))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::from_entries(vec![
            ("secs", Value::UInt(self.as_secs())),
            ("nanos", Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = __field(v, "secs")?;
        let nanos: u32 = __field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => other.render_compact(),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    // Keys were rendered as strings; try the string form
                    // first, then reverse integer keys through the
                    // numeric Value forms.
                    let key = K::from_value(&Value::Str(k.clone())).or_else(|e| {
                        if let Ok(n) = k.parse::<u64>() {
                            K::from_value(&Value::UInt(n))
                        } else if let Ok(n) = k.parse::<i64>() {
                            K::from_value(&Value::Int(n))
                        } else {
                            Err(e)
                        }
                    })?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($(__index::<$t>(v, $n)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}
