//! The shim's JSON-like value tree.
//!
//! Objects preserve insertion order (a `Vec` of entries rather than a
//! map), so serialized field order matches declaration order and text
//! round-trips are stable.

use crate::DeError;
use std::fmt::Write as _;
use std::ops::Index;

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative (or explicitly signed) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered entries.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build an object from `(key, value)` entries.
    pub fn from_entries(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build an array from items.
    pub fn from_items(items: Vec<Value>) -> Value {
        Value::Array(items)
    }

    /// A string value.
    pub fn text(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// An externally tagged single-entry object: `{"tag": value}`.
    pub fn tagged(tag: &str, value: Value) -> Value {
        Value::Object(vec![(tag.to_string(), value)])
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric accessor: unsigned.
    pub fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(DeError::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric accessor: signed.
    pub fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
            other => Err(DeError::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric accessor: float (integers widen).
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Render as compact JSON text.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON text (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the same f64 and always marks it as a float.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// Comparisons against plain literals, for test ergonomics
// (`json["clb_col"] == 20`).
macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::UInt(n) => i128::from(*n) == *other as i128,
                    Value::Int(n) => i128::from(*n) == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
