//! Offline shim of `serde_json`: JSON text rendering/parsing over the
//! vendored `serde` facade's [`Value`] tree.

#![allow(clippy::all)]

pub use serde::value::Value;

use serde::{Deserialize, Serialize};

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serialize `value` to a pretty (2-space-indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Serialize `value` to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected `{:?}` at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{:?}`",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{:?}`",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `{other:?}`")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "123",
            "-7",
            "1.5",
            "\"hi\\n\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":"x"}],"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render_compact(), text);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn float_fidelity() {
        let v = Value::Float(0.1 + 0.2);
        assert_eq!(parse(&v.render_compact()).unwrap(), v);
    }
}
