//! Offline shim of `parking_lot`: `Mutex`/`RwLock` with parking_lot's
//! non-poisoning API, backed by the std primitives. A poisoned std lock
//! (a panic while held) is treated as still-usable, matching
//! parking_lot semantics.

#![allow(clippy::all)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
