//! Offline shim of the tiny `bytes` surface: `Bytes`/`BytesMut` as thin
//! wrappers over `Vec<u8>` (no refcounted zero-copy slicing).

#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.0.push(byte);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, word: u32) {
        self.0.extend_from_slice(&word.to_be_bytes());
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}
