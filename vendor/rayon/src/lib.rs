//! Offline shim of `rayon`'s parallel iterator surface.
//!
//! The shim materializes the source iterator into a `Vec`, splits it
//! into contiguous chunks, and fans the chunks out over
//! `std::thread::scope` workers. Output order always matches input
//! order, so `collect()` is deterministic regardless of scheduling.

#![allow(clippy::all)]

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Number of worker threads to fan out over.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on collections: parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send + 'a;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` on collections: parallel iterator over mutable
/// references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (a mutable reference).
    type Item: Send + 'a;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item>;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// The operations the workspace uses on parallel iterators.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Run the pipeline, producing the ordered output vector.
    fn drive(self) -> Vec<Self::Item>;

    /// Map each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Map with a per-worker scratch value cloned from `init`.
    ///
    /// Each worker thread clones `init` once and reuses it across every
    /// element that worker processes — the rayon idiom for reusable
    /// per-worker buffers.
    fn map_with<S, R, F>(self, init: S, f: F) -> MapWith<Self, S, F>
    where
        S: Clone + Send,
        R: Send,
        F: Fn(&mut S, Self::Item) -> R + Sync + Send,
    {
        MapWith {
            base: self,
            init,
            f,
        }
    }

    /// Keep elements for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Pair each element with its input-order index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Collect into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.drive().len()
    }

    /// Apply `f` to every element (in parallel, order unspecified).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).drive();
    }

    /// Sum the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }
}

/// Collection from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send> {
    /// Build `Self` from the iterator's ordered output.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.drive()
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
        iter.drive().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` pipeline stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let f = &self.f;
        run_chunked(self.base.drive(), move |item| f(item))
    }
}

/// Parallel `map_with` pipeline stage (per-worker scratch).
pub struct MapWith<B, S, F> {
    base: B,
    init: S,
    f: F,
}

impl<B, S, R, F> ParallelIterator for MapWith<B, S, F>
where
    B: ParallelIterator,
    S: Clone + Send,
    R: Send,
    F: Fn(&mut S, B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let f = &self.f;
        let init = &self.init;
        run_chunked_with(
            self.base.drive(),
            move || init.clone(),
            move |scratch, item| f(scratch, item),
        )
    }
}

/// Parallel `enumerate` pipeline stage.
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);

    fn drive(self) -> Vec<(usize, B::Item)> {
        // Indices are assigned before fan-out, so they follow input order
        // regardless of scheduling.
        self.base.drive().into_iter().enumerate().collect()
    }
}

/// Parallel `filter` pipeline stage.
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn drive(self) -> Vec<B::Item> {
        let f = self.f;
        self.base
            .drive()
            .into_iter()
            .filter(|item| f(item))
            .collect()
    }
}

fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_chunked_with(items, || (), |(), item| f(item))
}

/// Chunked fan-out: split `items` into one contiguous chunk per worker,
/// process chunks on scoped threads, and splice results back in input
/// order. Each worker builds its scratch once via `mk_scratch`.
fn run_chunked_with<T, S, R, F, M>(items: Vec<T>, mut mk_scratch: M, f: F) -> Vec<R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(&mut S, T) -> R + Sync,
    M: FnMut() -> S,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        let mut scratch = mk_scratch();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }

    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                // Scratch values are built on the calling thread and
                // moved into their worker, so `mk_scratch` needs no
                // `Sync` bound.
                let mut scratch = mk_scratch();
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|item| f(&mut scratch, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        let out: Vec<usize> = (0usize..64)
            .into_par_iter()
            .map_with(Vec::<u8>::with_capacity(16), |scratch, x| {
                scratch.clear();
                scratch.extend(std::iter::repeat_n(0u8, x % 7));
                scratch.len()
            })
            .collect();
        assert_eq!(out, (0usize..64).map(|x| x % 7).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1, 2, 3, 4];
        let out: Vec<i32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
